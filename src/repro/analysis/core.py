"""Core types of the static-analysis framework.

A *checker* is an :class:`ast.NodeVisitor` subclass registered under a rule
id (see :mod:`repro.analysis.registry`).  Module-scoped checkers visit one
parsed file at a time; project-scoped checkers run once over the whole scan
(:class:`ProjectContext`) so they can cross-reference files — the
engine-registry rule needs the config module, every stage config class,
*and* the test tree at once.

Findings are plain frozen dataclasses; suppression
(``# repro-lint: disable=<rule>``) is resolved at report time by
:meth:`Checker.report`, so individual checkers never deal with comments.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set

from repro.analysis.suppressions import line_suppressions


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


class ModuleContext:
    """One parsed source file plus its suppression map."""

    def __init__(self, path: Path, source: str, tree: ast.Module, display_path: str):
        self.path = path
        self.source = source
        self.tree = tree
        #: Path as printed in findings (relative to the scan root when possible).
        self.display_path = display_path
        #: line number -> set of suppressed rule ids ("all" silences every rule).
        self.suppressed: Dict[int, Set[str]] = line_suppressions(source)

    def is_suppressed(self, line: int, rule: str) -> bool:
        rules = self.suppressed.get(line)
        if not rules:
            return False
        return "all" in rules or rule in rules

    def posix_path(self) -> str:
        return self.path.as_posix()


class ProjectContext:
    """The whole scan: every module plus the location of the test tree."""

    def __init__(self, modules: Sequence[ModuleContext], tests_dir: Optional[Path] = None):
        self.modules = list(modules)
        self.tests_dir = tests_dir

    def test_sources(self) -> Dict[Path, str]:
        """Raw text of every python file under the test tree (may be empty)."""
        sources: Dict[Path, str] = {}
        if self.tests_dir is None or not self.tests_dir.is_dir():
            return sources
        for path in sorted(self.tests_dir.rglob("*.py")):
            if "__pycache__" in path.parts:
                continue
            try:
                sources[path] = path.read_text(encoding="utf-8")
            except (OSError, UnicodeDecodeError):
                continue
        return sources


class Checker(ast.NodeVisitor):
    """Base class of all rules.

    Subclasses set ``rule`` (the id used in ``--select`` and suppression
    comments), ``description`` (one line, shown by ``--list-rules``) and
    ``scope`` ("module" or "project").  Module checkers implement the usual
    ``visit_*`` methods and are driven by :meth:`check_module`; project
    checkers override :meth:`check_project` instead.
    """

    rule: str = ""
    description: str = ""
    scope: str = "module"

    def __init__(self) -> None:
        self.findings: List[Finding] = []
        self._ctx: Optional[ModuleContext] = None

    # -- driving -------------------------------------------------------
    def check_module(self, ctx: ModuleContext) -> List[Finding]:
        self.findings = []
        self._ctx = ctx
        self.visit(ctx.tree)
        self._ctx = None
        return self.findings

    def check_project(self, project: ProjectContext) -> List[Finding]:
        raise NotImplementedError(f"{self.rule} is not a project-scoped rule")

    # -- reporting -----------------------------------------------------
    def report(self, node: ast.AST, message: str, ctx: Optional[ModuleContext] = None) -> None:
        """Record a finding at ``node`` unless its line suppresses the rule."""
        ctx = ctx or self._ctx
        assert ctx is not None, "report() called outside a check"
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        if ctx.is_suppressed(line, self.rule):
            return
        self.findings.append(
            Finding(
                path=ctx.display_path,
                line=line,
                col=col + 1,
                rule=self.rule,
                message=message,
            )
        )


def dotted_name(node: ast.AST) -> Optional[str]:
    """Flatten ``a.b.c`` attribute chains to a dotted string (else None)."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def path_matches(path: Path, suffix: str) -> bool:
    """True when ``path`` ends with the ``/``-separated ``suffix``."""
    return path.as_posix().endswith(suffix)
