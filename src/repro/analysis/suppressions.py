"""Inline suppression comments: ``# repro-lint: disable=<rule>[,<rule>...]``.

Comments are located with :mod:`tokenize` rather than a regex over raw
lines so that a string literal containing the marker text never silences a
rule.  The marker applies to the physical line carrying the comment — put
it at the end of the offending line (findings are anchored to the first
line of their statement).  ``disable=all`` silences every rule on that
line.
"""

from __future__ import annotations

import io
import tokenize
import re
from typing import Dict, List, Sequence, Set

_MARKER = re.compile(r"#\s*repro-lint:\s*disable=([A-Za-z0-9_,\s\-]+)")
_DIRECTIVE = re.compile(r"#\s*repro-lint:\s*([a-z\-]+)=([A-Za-z0-9_]+)\s*$")


def parse_disable_comment(comment: str) -> Set[str]:
    """Rule ids named by one comment string (empty set when not a marker)."""
    match = _MARKER.search(comment)
    if not match:
        return set()
    rules = {part.strip() for part in match.group(1).split(",")}
    return {rule for rule in rules if rule}


def tokenize_source(source: str) -> List[tokenize.TokenInfo]:
    """Tokenise once, tolerantly.

    Tokenisation errors (the file will separately fail to parse) yield the
    tokens read so far rather than raising: suppression handling must never
    be the thing that crashes a lint run.
    """
    tokens: List[tokenize.TokenInfo] = []
    readline = io.StringIO(source).readline
    try:
        for token in tokenize.generate_tokens(readline):
            tokens.append(token)
    except (tokenize.TokenError, IndentationError, SyntaxError):
        pass
    return tokens


def suppressions_from_tokens(
    tokens: Sequence[tokenize.TokenInfo],
) -> Dict[int, Set[str]]:
    """Map line number -> rule ids suppressed on that line."""
    suppressed: Dict[int, Set[str]] = {}
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        rules = parse_disable_comment(token.string)
        if rules:
            suppressed.setdefault(token.start[0], set()).update(rules)
    return suppressed


def line_suppressions(source: str) -> Dict[int, Set[str]]:
    """Tokenise ``source`` and map line number -> suppressed rule ids.

    Kept for callers without a cached token stream;
    :class:`~repro.analysis.core.ModuleContext` tokenises once and uses
    :func:`suppressions_from_tokens` directly.
    """
    return suppressions_from_tokens(tokenize_source(source))


def module_directives(tokens: Sequence[tokenize.TokenInfo]) -> Dict[str, str]:
    """Module-level ``# repro-lint: <key>=<value>`` directives.

    Only comments in the file header (before the first non-comment,
    non-string statement line) count, e.g. ``# repro-lint:
    module-dtype=float32`` opting a module into the dtype-discipline rule.
    """
    directives: Dict[str, str] = {}
    for token in tokens:
        if token.type not in (
            tokenize.COMMENT,
            tokenize.NL,
            tokenize.NEWLINE,
            tokenize.STRING,
            tokenize.ENCODING,
            tokenize.INDENT,
            tokenize.DEDENT,
        ):
            break
        if token.type == tokenize.COMMENT:
            match = _DIRECTIVE.search(token.string)
            if match and match.group(1) != "disable":
                directives[match.group(1)] = match.group(2)
    return directives
