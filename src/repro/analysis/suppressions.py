"""Inline suppression comments: ``# repro-lint: disable=<rule>[,<rule>...]``.

Comments are located with :mod:`tokenize` rather than a regex over raw
lines so that a string literal containing the marker text never silences a
rule.  The marker applies to the physical line carrying the comment — put
it at the end of the offending line (findings are anchored to the first
line of their statement).  ``disable=all`` silences every rule on that
line.
"""

from __future__ import annotations

import io
import re
import tokenize
from typing import Dict, Set

_MARKER = re.compile(r"#\s*repro-lint:\s*disable=([A-Za-z0-9_,\s\-]+)")


def parse_disable_comment(comment: str) -> Set[str]:
    """Rule ids named by one comment string (empty set when not a marker)."""
    match = _MARKER.search(comment)
    if not match:
        return set()
    rules = {part.strip() for part in match.group(1).split(",")}
    return {rule for rule in rules if rule}


def line_suppressions(source: str) -> Dict[int, Set[str]]:
    """Map line number -> rule ids suppressed on that line.

    Tokenisation errors (the file will separately fail to parse) yield an
    empty map rather than raising: suppression handling must never be the
    thing that crashes a lint run.
    """
    suppressed: Dict[int, Set[str]] = {}
    readline = io.StringIO(source).readline
    try:
        for token in tokenize.generate_tokens(readline):
            if token.type != tokenize.COMMENT:
                continue
            rules = parse_disable_comment(token.string)
            if rules:
                suppressed.setdefault(token.start[0], set()).update(rules)
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return suppressed
    return suppressed
