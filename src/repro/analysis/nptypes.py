"""A small abstract domain for numpy values: dtype × writability.

The flow checkers reason about two orthogonal properties of an array-ish
value:

* its **dtype**, abstracted to the three-way split that matters for the
  float32 model-matrix contract — ``float32``, ``float64``, anything else
  (``OTHER``) — plus the lattice extremes ``BOTTOM`` (no information yet)
  and ``UNKNOWN`` (could be anything);
* its **writability** — ``WRITABLE``, ``READONLY`` (a ``mode="r"``
  memmap, a loaded serving index), or ``UNKNOWN``.

Both form flat lattices: ``BOTTOM`` joins to the other element, two
different concrete elements join to ``UNKNOWN``.  The transfer helpers
translate AST dtype expressions (``np.float32``, ``"float64"``,
``np.dtype("float32")``) into lattice elements and model numpy's binary
promotion (``float32 ⊕ float64 → float64`` — the silent upcast
`dtype-discipline` exists to catch).
"""

from __future__ import annotations

import ast
from typing import Optional

# -- dtype lattice -----------------------------------------------------
DT_BOTTOM = "bottom"  #: no information (identity of join)
DT_FLOAT32 = "float32"
DT_FLOAT64 = "float64"
DT_OTHER = "other"  #: a known dtype that is neither float32 nor float64
DT_UNKNOWN = "unknown"  #: conflicting or dynamic information (top)

_DTYPES = (DT_BOTTOM, DT_FLOAT32, DT_FLOAT64, DT_OTHER, DT_UNKNOWN)

# -- writability lattice ----------------------------------------------
W_BOTTOM = "bottom"
W_WRITABLE = "writable"
W_READONLY = "readonly"
W_UNKNOWN = "unknown"

_WRITABILITIES = (W_BOTTOM, W_WRITABLE, W_READONLY, W_UNKNOWN)


def _flat_join(a: str, b: str, members, bottom: str, top: str) -> str:
    if a not in members or b not in members:
        raise ValueError(f"not lattice elements: {a!r}, {b!r}")
    if a == b:
        return a
    if a == bottom:
        return b
    if b == bottom:
        return a
    return top


def join_dtype(a: str, b: str) -> str:
    """Least upper bound of two dtype elements (flat lattice)."""
    return _flat_join(a, b, _DTYPES, DT_BOTTOM, DT_UNKNOWN)


def join_writability(a: str, b: str) -> str:
    """Least upper bound of two writability elements (flat lattice)."""
    return _flat_join(a, b, _WRITABILITIES, W_BOTTOM, W_UNKNOWN)


def promote_dtype(a: str, b: str) -> str:
    """Result dtype of a binary numpy operation between ``a`` and ``b``.

    Models the one promotion the float32 contract cares about: mixing
    ``float32`` with ``float64`` yields ``float64`` (the silent upcast),
    while ``BOTTOM`` behaves as "no operand" and any ``UNKNOWN``/``OTHER``
    involvement degrades to ``UNKNOWN``.
    """
    if a == DT_BOTTOM:
        return b
    if b == DT_BOTTOM:
        return a
    if a == b:
        return a
    if {a, b} == {DT_FLOAT32, DT_FLOAT64}:
        return DT_FLOAT64
    return DT_UNKNOWN


def is_upcast(a: str, b: str) -> bool:
    """True when combining ``a`` and ``b`` silently widens float32 to float64."""
    return {a, b} == {DT_FLOAT32, DT_FLOAT64}


# -- AST → lattice -----------------------------------------------------
_F32_NAMES = {"float32", "single"}
_F64_NAMES = {"float64", "double", "float_", "float"}


def dtype_from_string(text: str) -> str:
    """Lattice element for a dtype spelled as a string (``"float32"``...)."""
    name = text.strip().lower()
    if name in _F32_NAMES or name in ("<f4", "f4"):
        return DT_FLOAT32
    if name in _F64_NAMES or name in ("<f8", "f8"):
        return DT_FLOAT64
    return DT_OTHER


def dtype_from_ast(node: Optional[ast.AST]) -> str:
    """Lattice element for a dtype *expression* in source.

    Recognises string constants, ``np.float32`` / ``numpy.float64``
    attribute reads, bare ``float`` (numpy maps it to float64) and
    ``np.dtype("...")`` wrappers.  Anything dynamic is ``UNKNOWN``.
    """
    if node is None:
        return DT_UNKNOWN
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return dtype_from_string(node.value)
    if isinstance(node, ast.Name):
        if node.id == "float":
            return DT_FLOAT64
        if node.id in _F32_NAMES:
            return DT_FLOAT32
        if node.id in _F64_NAMES:
            return DT_FLOAT64
        return DT_UNKNOWN
    if isinstance(node, ast.Attribute):
        if node.attr in _F32_NAMES:
            return DT_FLOAT32
        if node.attr in _F64_NAMES:
            return DT_FLOAT64
        return DT_UNKNOWN
    if isinstance(node, ast.Call):
        # np.dtype("float32") and friends: look through the wrapper.
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr == "dtype" and node.args:
            return dtype_from_ast(node.args[0])
    return DT_UNKNOWN
