"""Rendering of lint results: human text and a stable JSON schema.

The JSON layout is versioned (``schema_version``) and covered by a schema
test so downstream consumers (the CI artifact upload, dashboards) can rely
on it; add keys rather than renaming them, and bump the version for any
breaking change.
"""

from __future__ import annotations

import json
from typing import Dict, List, Sequence

from repro.analysis.core import Finding

#: Bump on any breaking change to the JSON layout below.
#: v2: findings gained a ``provenance`` array (dataflow trace strings).
REPORT_SCHEMA_VERSION = 2


def sort_findings(findings: Sequence[Finding]) -> List[Finding]:
    return sorted(findings, key=lambda f: (f.path, f.line, f.col, f.rule))


def render_text(findings: Sequence[Finding], files_scanned: int) -> str:
    """One ``path:line:col: rule message`` line per finding plus a summary."""
    lines = [finding.format() for finding in sort_findings(findings)]
    noun = "file" if files_scanned == 1 else "files"
    if findings:
        count = len(findings)
        lines.append(
            f"Found {count} violation{'s' if count != 1 else ''} in {files_scanned} {noun}."
        )
    else:
        lines.append(f"All clear: {files_scanned} {noun}, 0 violations.")
    return "\n".join(lines)


def report_dict(findings: Sequence[Finding], files_scanned: int) -> Dict:
    """The ``--json`` payload as a plain dict (stable, versioned)."""
    ordered = sort_findings(findings)
    counts: Dict[str, int] = {}
    for finding in ordered:
        counts[finding.rule] = counts.get(finding.rule, 0) + 1
    return {
        "schema_version": REPORT_SCHEMA_VERSION,
        "tool": "repro-lint",
        "files_scanned": files_scanned,
        "violations": len(ordered),
        "counts_by_rule": dict(sorted(counts.items())),
        "findings": [
            {
                "path": finding.path,
                "line": finding.line,
                "col": finding.col,
                "rule": finding.rule,
                "message": finding.message,
                "provenance": list(finding.provenance),
            }
            for finding in ordered
        ],
    }


def render_json(findings: Sequence[Finding], files_scanned: int) -> str:
    return json.dumps(report_dict(findings, files_scanned), indent=2, sort_keys=False)


def _escape_gh_data(text: str) -> str:
    """Escape a workflow-command *message* (%, CR, LF)."""
    return text.replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A")


def _escape_gh_property(text: str) -> str:
    """Escape a workflow-command *property* value (adds , and :)."""
    return _escape_gh_data(text).replace(",", "%2C").replace(":", "%3A")


def render_github(findings: Sequence[Finding], files_scanned: int) -> str:
    """GitHub Actions workflow commands: one ``::error`` line per finding.

    Emitted by ``--format github`` in the CI lint job so findings annotate
    the PR diff at the offending line.  A trailing summary line (not a
    workflow command) mirrors the text renderer.
    """
    lines = []
    for finding in sort_findings(findings):
        message = finding.message
        if finding.provenance:
            message += " [" + " <- ".join(finding.provenance) + "]"
        lines.append(
            "::error file={file},line={line},col={col},title={title}::{message}".format(
                file=_escape_gh_property(finding.path),
                line=finding.line,
                col=finding.col,
                title=_escape_gh_property(f"repro-lint {finding.rule}"),
                message=_escape_gh_data(message),
            )
        )
    noun = "file" if files_scanned == 1 else "files"
    count = len(lines)
    if count:
        lines.append(f"Found {count} violation{'s' if count != 1 else ''} in {files_scanned} {noun}.")
    else:
        lines.append(f"All clear: {files_scanned} {noun}, 0 violations.")
    return "\n".join(lines)
