"""fork-safety: pool tasks must be module-level, resource-free callables.

:class:`repro.parallel.shm.WorkerPool` submits tasks to a
``ProcessPoolExecutor`` — under the spawn start method every task callable
is *pickled* in the parent and re-imported by qualified name in the
worker.  Three shapes break that, at submit time or (worse) only on the
spawn platforms CI doesn't cover:

* **lambdas** — not picklable at all;
* **nested functions / closures** — their qualified name
  (``outer.<locals>.inner``) cannot be re-imported, and any captured
  local state silently diverges from the parent;
* **bound methods of resource holders** — pickling ``obj.method`` pickles
  ``obj``; when the object holds a :class:`ShmArena`, an executor, or an
  open file handle, the worker either crashes or gets a dead handle.

The rule uses the dataflow engine to find submission sites
(``pool.run(fn, tasks)`` on a ``WorkerPool`` value, ``.submit``/``.map``
on an executor) and checks the submitted callable: names resolving through
the project symbol table to a module-level ``def`` — in any scanned
module, through aliases and re-exports — are fine; lambdas (including
ones stashed in a local first), nested defs, and bound methods whose
receiver is tagged ``arena``/``file-handle``/``executor`` (or whose class
assigns such a resource to ``self`` in any method) are flagged.
"""

from __future__ import annotations

import ast
from typing import Dict, Optional, Set

from repro.analysis.checkers._flow import FlowChecker, expr_key
from repro.analysis.core import ModuleContext, ProjectContext
from repro.analysis.registry import register

#: Receiver tags that make a bound method unsafe to ship to a worker.
_RESOURCE_TAGS = frozenset({"arena", "file-handle", "worker-pool", "executor"})

#: Constructors whose result, stored on ``self``, makes instances unsafe.
_RESOURCE_CONSTRUCTORS = frozenset(
    {"ShmArena", "WorkerPool", "ProcessPoolExecutor", "ThreadPoolExecutor", "open"}
)


def _constructor_name(func: ast.AST) -> Optional[str]:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


@register
class ForkSafetyChecker(FlowChecker):
    rule = "fork-safety"
    description = (
        "WorkerPool/executor tasks must be module-level functions "
        "(no lambdas, closures, or bound methods of resource holders)"
    )

    def check_flow(self, ctx: ModuleContext, flow, project: ProjectContext) -> None:
        resource_classes = self._resource_classes(ctx)
        method_owner = self._method_owners(ctx)
        for scope in flow.functions:
            owner = method_owner.get(id(scope.fn)) if scope.fn is not None else None
            for event in scope.calls:
                is_pool_run = event.method == "run" and event.base.has("worker-pool")
                is_executor = event.method in ("submit", "map") and event.base.has(
                    "executor"
                )
                if not (is_pool_run or is_executor) or not event.arg_nodes:
                    continue
                self._check_callable(
                    event, scope, owner, resource_classes
                )

    # -- per-site check ------------------------------------------------
    def _check_callable(self, event, scope, owner, resource_classes) -> None:
        fn_node = event.arg_nodes[0]
        fn_value = event.args[0]
        site = f".{event.method}(...)"
        if isinstance(fn_node, ast.Lambda) or fn_value.ref == "<lambda>":
            self.report(
                fn_node,
                f"lambda submitted to {site}; spawn workers cannot unpickle "
                "lambdas — use a module-level function",
            )
            return
        if (fn_value.ref or "").startswith("<local>.") or (
            isinstance(fn_node, ast.Name) and fn_node.id in scope.local_defs
        ):
            self.report(
                fn_node,
                f"nested function submitted to {site}; its qualified name "
                "cannot be re-imported under spawn (and closed-over locals "
                "diverge) — hoist it to module level",
            )
            return
        if isinstance(fn_node, ast.Attribute):
            receiver = fn_node.value
            receiver_key = expr_key(receiver)
            receiver_tags = (
                scope.name_tags.get(receiver_key, frozenset())
                if receiver_key
                else frozenset()
            )
            held = receiver_tags & _RESOURCE_TAGS
            if held:
                self.report(
                    fn_node,
                    f"bound method of a {sorted(held)[0]} holder submitted to "
                    f"{site}; pickling the task pickles the resource — "
                    "use a module-level function",
                )
                return
            root = receiver
            while isinstance(root, ast.Attribute):
                root = root.value
            if (
                isinstance(root, ast.Name)
                and root.id == "self"
                and owner is not None
                and resource_classes.get(id(owner))
            ):
                resource = sorted(resource_classes[id(owner)])[0]
                self.report(
                    fn_node,
                    f"bound method submitted to {site} on an instance holding "
                    f"{resource}; pickling the task pickles the resource — "
                    "use a module-level function",
                )

    # -- light class scan ----------------------------------------------
    @staticmethod
    def _resource_classes(ctx: ModuleContext) -> Dict[int, Set[str]]:
        """Class node id -> resource constructors assigned to ``self``."""
        holders: Dict[int, Set[str]] = {}
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            held: Set[str] = set()
            for sub in ast.walk(node):
                if not isinstance(sub, ast.Assign) or not isinstance(
                    sub.value, ast.Call
                ):
                    continue
                name = _constructor_name(sub.value.func)
                if name not in _RESOURCE_CONSTRUCTORS:
                    continue
                for target in sub.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        held.add(name)
            if held:
                holders[id(node)] = held
        return holders

    @staticmethod
    def _method_owners(ctx: ModuleContext) -> Dict[int, ast.ClassDef]:
        """Function node id -> immediately enclosing class (methods only)."""
        owners: Dict[int, ast.ClassDef] = {}
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef):
                for stmt in node.body:
                    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        owners[id(stmt)] = node
        return owners
