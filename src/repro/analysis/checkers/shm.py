"""shm-ownership: only :class:`repro.parallel.shm.ShmArena` creates segments.

The parallel fit's ``/dev/shm`` hygiene rests on a single-owner rule: the
arena creates every segment, tracks it in ``_live``, and guarantees
close+unlink on exit even when a shard raises; workers *attach* without
resource-tracker registration so the parent stays the one authority.  A
``SharedMemory(create=True)`` call anywhere else produces a segment no
arena will ever unlink — a leak the teardown-hygiene tests cannot see
because they only watch arena-created names.

The rule flags every ``SharedMemory(...)`` call whose ``create`` argument
— keyword or second positional (``SharedMemory(name, True)``) — is not
the literal ``False`` (attaching by name is fine anywhere), in any module
other than ``parallel/shm.py``.  A dynamic ``create=flag`` argument is
flagged too: ownership must be decidable statically.
"""

from __future__ import annotations

import ast
from typing import Optional

from repro.analysis.core import Checker, ModuleContext, path_matches
from repro.analysis.registry import register

#: The single module allowed to create shared-memory segments.
ALLOWED_SUFFIX = "parallel/shm.py"


@register
class ShmOwnershipChecker(Checker):
    rule = "shm-ownership"
    description = (
        "SharedMemory(create=True) only inside parallel/shm.py "
        "(ShmArena is the single segment owner)"
    )

    def check_module(self, ctx: ModuleContext, project=None):
        if path_matches(ctx.path, ALLOWED_SUFFIX):
            return []
        return super().check_module(ctx, project)

    def _is_shared_memory(self, func: ast.AST) -> bool:
        if isinstance(func, ast.Name):
            if func.id == "SharedMemory":
                return True
        elif isinstance(func, ast.Attribute):
            if func.attr == "SharedMemory":
                return True
        else:
            return False
        # The symbol table sees through aliases the syntactic match misses
        # (``from multiprocessing.shared_memory import SharedMemory as SM``).
        if self.project is not None and self._ctx is not None:
            symbols = self.project.index.by_ctx.get(id(self._ctx))
            if symbols is not None:
                resolved = self.project.index.resolve_expr(symbols, func)
                return resolved is not None and resolved.name == "SharedMemory"
        return False

    def visit_Call(self, node: ast.Call) -> None:
        if self._is_shared_memory(node.func):
            # create is SharedMemory's second parameter: it arrives as the
            # second positional argument or as a create= keyword.
            create: Optional[ast.AST] = None
            if len(node.args) >= 2:
                create = node.args[1]
            for keyword in node.keywords:
                if keyword.arg == "create":
                    create = keyword.value
            if create is not None and not (
                isinstance(create, ast.Constant) and create.value is False
            ):
                self.report(
                    node,
                    "SharedMemory segment created outside parallel/shm.py; "
                    "allocate through ShmArena so the segment is "
                    "close+unlink-guaranteed (and leak-testable)",
                )
        self.generic_visit(node)
