"""dtype-discipline: float32 model-matrix modules stay float32.

The embedding matrices are stored, served and memory-mapped as float32
(half the index size, and the serving mmap contract depends on the layout
staying fixed).  Two mistakes silently break that:

* a **dtype-less allocation** — ``np.zeros(shape)`` defaults to float64,
  doubling the matrix and changing every downstream ``dtype``;
* **mixed float32/float64 arithmetic** — a float64 operand (``np.float64``
  scalar, a dtype-less intermediate) widens the whole expression to
  float64, so a matrix written back from it changes dtype — or pays a
  cast — far from the line that caused it.

The rule is **opt-in per module**: a header directive comment

    # repro-lint: module-dtype=float32

(placed above the first statement, next to the module docstring) declares
the module's arrays float32.  In annotated modules the rule flags
dtype-less ``np.zeros``/``np.empty``/``np.ones``/``np.full`` calls and any
binary operation whose operands the dtype lattice proves float32 × float64
(:mod:`repro.analysis.nptypes`); untracked or ``unknown`` dtypes are never
flagged.  Intentional float64 accumulators can suppress the line.
"""

from __future__ import annotations

from repro.analysis.checkers._flow import FlowChecker
from repro.analysis.core import ModuleContext, ProjectContext
from repro.analysis.registry import register

#: numpy constructors with a defaulted (float64) dtype parameter.
_DTYPE_DEFAULTED = {"zeros": 1, "empty": 1, "ones": 1, "full": 2}


@register
class DtypeDisciplineChecker(FlowChecker):
    rule = "dtype-discipline"
    description = (
        "modules annotated '# repro-lint: module-dtype=float32' may not "
        "allocate dtype-less arrays or mix float32/float64 arithmetic"
    )

    def check_flow(self, ctx: ModuleContext, flow, project: ProjectContext) -> None:
        if ctx.directives.get("module-dtype") != "float32":
            return
        for scope in flow.functions:
            for event in scope.calls:
                position = _DTYPE_DEFAULTED.get(event.suffix)
                if (
                    position is None
                    or not (event.qualname or "").startswith("numpy.")
                    or "dtype" in event.keywords
                    or len(event.arg_nodes) > position
                ):
                    continue
                self.report(
                    event.node,
                    f"np.{event.suffix}() without dtype allocates float64 in "
                    "a float32 module; pass dtype=np.float32",
                )
            for upcast in scope.upcasts:
                self.report(
                    upcast.node,
                    f"float32 x float64 arithmetic ({upcast.repr}) silently "
                    "widens to float64 in a float32 module; cast the float64 "
                    "operand with np.float32(...) / .astype(np.float32)",
                    provenance=upcast.left.trace + upcast.right.trace,
                )
