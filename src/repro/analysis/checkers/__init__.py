"""Built-in checkers; importing this package registers every rule."""

from repro.analysis.checkers.atomic_write import AtomicWriteChecker
from repro.analysis.checkers.engine_registry import EngineRegistryChecker
from repro.analysis.checkers.rng import RngDisciplineChecker
from repro.analysis.checkers.shm import ShmOwnershipChecker
from repro.analysis.checkers.timers import TimerDisciplineChecker
from repro.analysis.checkers.version_bump import VersionBumpChecker

__all__ = [
    "AtomicWriteChecker",
    "EngineRegistryChecker",
    "RngDisciplineChecker",
    "ShmOwnershipChecker",
    "TimerDisciplineChecker",
    "VersionBumpChecker",
]
