"""Built-in checkers; importing this package registers every rule."""

from repro.analysis.checkers.arena_lifecycle import ArenaLifecycleChecker
from repro.analysis.checkers.atomic_write import AtomicWriteChecker
from repro.analysis.checkers.dtype_discipline import DtypeDisciplineChecker
from repro.analysis.checkers.engine_registry import EngineRegistryChecker
from repro.analysis.checkers.fork_safety import ForkSafetyChecker
from repro.analysis.checkers.mmap_mutation import MmapMutationChecker
from repro.analysis.checkers.rng import RngDisciplineChecker
from repro.analysis.checkers.rng_flow import RngFlowChecker
from repro.analysis.checkers.shm import ShmOwnershipChecker
from repro.analysis.checkers.timers import TimerDisciplineChecker
from repro.analysis.checkers.version_bump import VersionBumpChecker

__all__ = [
    "ArenaLifecycleChecker",
    "AtomicWriteChecker",
    "DtypeDisciplineChecker",
    "EngineRegistryChecker",
    "ForkSafetyChecker",
    "MmapMutationChecker",
    "RngDisciplineChecker",
    "RngFlowChecker",
    "ShmOwnershipChecker",
    "TimerDisciplineChecker",
    "VersionBumpChecker",
]
