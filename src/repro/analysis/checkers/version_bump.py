"""version-bump: ``MatchGraph`` mutators must move the CSR cache key.

Every derived snapshot (the CSR adjacency behind the walk/compression
engines, the primed serving cache) keys itself on ``MatchGraph._version``;
a mutating method that forgets ``self._version += 1`` leaves stale
snapshots looking valid, which surfaces as walks over deleted nodes or
edges that never existed.  The rule inspects every method of a target
class and flags those that mutate the topology stores (``_adjacency``,
``_info``, ``_nodes``) without any ``_version`` write.

Mutations are recognised through local aliases too — the bulk APIs bind
``adjacency = self._adjacency`` (and element views such as
``neighbors = adjacency[a]``) before mutating, so the checker propagates
"watched" status through simple ``name = <watched expression>``
assignments, subscripts of watched values, and mutating method calls
(``add``/``discard``/``update``/...) on them.

The check is intentionally presence-based, not path-sensitive: a method
that bumps on *some* path passes.  That still catches the dominant failure
mode — a brand-new mutator with no bump at all — without hard-wiring a
CFG into the linter; conditional-bump correctness stays covered by the
cache-invalidation unit tests.
"""

from __future__ import annotations

import ast
from typing import Optional, Set, Tuple

from repro.analysis.core import Checker
from repro.analysis.registry import register

#: Classes whose methods are held to the bump contract.
TARGET_CLASSES: Tuple[str, ...] = ("MatchGraph",)

#: Attributes that constitute graph topology.
WATCHED_ATTRS: Tuple[str, ...] = ("_adjacency", "_info", "_nodes")

#: The version counter that must accompany topology mutations.
VERSION_ATTR = "_version"

#: Method names that mutate containers in place.
MUTATING_METHODS = frozenset(
    {
        "add",
        "append",
        "clear",
        "discard",
        "extend",
        "insert",
        "pop",
        "popitem",
        "remove",
        "setdefault",
        "update",
    }
)


def _self_attr(node: ast.AST, attrs: Tuple[str, ...]) -> bool:
    return (
        isinstance(node, ast.Attribute)
        and node.attr in attrs
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    )


class _MethodScan(ast.NodeVisitor):
    """Single pass over one method body: find mutations and version writes."""

    def __init__(self) -> None:
        self.watched_names: Set[str] = set()
        self.mutates: bool = False
        self.first_mutation: Optional[ast.AST] = None
        self.bumps_version: bool = False

    # -- watched-expression classification -----------------------------
    def _is_watched(self, node: ast.AST) -> bool:
        """True when ``node`` denotes (part of) a topology store."""
        if _self_attr(node, WATCHED_ATTRS):
            return True
        if isinstance(node, ast.Name):
            return node.id in self.watched_names
        if isinstance(node, ast.Subscript):
            return self._is_watched(node.value)
        return False

    def _mark_mutation(self, node: ast.AST) -> None:
        self.mutates = True
        if self.first_mutation is None:
            self.first_mutation = node

    # -- statements ----------------------------------------------------
    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            if _self_attr(target, (VERSION_ATTR,)):
                self.bumps_version = True
            elif _self_attr(target, WATCHED_ATTRS):
                # Rebinding the store wholesale (e.g. ``self._adjacency = {}``)
                # replaces topology just as surely as item writes.
                self._mark_mutation(node)
            elif isinstance(target, ast.Subscript) and self._is_watched(target.value):
                self._mark_mutation(node)
            elif isinstance(target, ast.Name) and self._is_watched(node.value):
                # Alias: ``adjacency = self._adjacency`` / ``nbrs = adjacency[a]``.
                self.watched_names.add(target.id)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        if _self_attr(node.target, (VERSION_ATTR,)):
            self.bumps_version = True
        elif self._is_watched(node.target):
            self._mark_mutation(node)
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            if self._is_watched(target):
                self._mark_mutation(node)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in MUTATING_METHODS
            and self._is_watched(func.value)
        ):
            self._mark_mutation(node)
        self.generic_visit(node)


@register
class VersionBumpChecker(Checker):
    rule = "version-bump"
    description = (
        "MatchGraph methods mutating _adjacency/_info/_nodes must write "
        "self._version (the CSR cache key)"
    )

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if node.name not in TARGET_CLASSES:
            self.generic_visit(node)
            return
        for item in node.body:
            if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            scan = _MethodScan()
            for stmt in item.body:
                scan.visit(stmt)
            if scan.mutates and not scan.bumps_version:
                self.report(
                    scan.first_mutation or item,
                    f"{node.name}.{item.name} mutates graph topology without "
                    f"writing self.{VERSION_ATTR}; stale CSR snapshots would "
                    "pass cache validation",
                )
        # Nested classes inside methods are out of contract scope.
