"""Shared plumbing of the flow-aware checkers.

:class:`FlowChecker` wires a module checker to the project dataflow cache:
``check_module`` fetches the (shared, memoised) :class:`ModuleFlow` of the
file and hands it to :meth:`check_flow`.  When a checker is driven without
a :class:`ProjectContext` (unit tests calling ``check_module(ctx)``
directly), a single-module project is built on the fly so resolution and
flow still work — just without cross-module visibility.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set

from repro.analysis.core import Checker, Finding, ModuleContext, ProjectContext

#: Scope owners: descending into these from an outer scope is skipped.
_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)


class FlowChecker(Checker):
    """Base of the dataflow-driven rules (mmap/fork/rng/dtype/arena)."""

    def check_module(
        self, ctx: ModuleContext, project: Optional[ProjectContext] = None
    ) -> List[Finding]:
        self.findings = []
        self._ctx = ctx
        if project is None:
            project = ProjectContext([ctx])
        self.project = project
        self.check_flow(ctx, project.flow(ctx), project)
        self._ctx = None
        return self.findings

    def check_flow(self, ctx: ModuleContext, flow, project: ProjectContext) -> None:
        raise NotImplementedError


def scope_body(ctx: ModuleContext, fn: Optional[ast.AST]) -> List[ast.stmt]:
    """The statement list owned by one flow scope (module body or function)."""
    return ctx.tree.body if fn is None else list(fn.body)


def iter_scope(body: List[ast.stmt]) -> Iterator[ast.AST]:
    """All nodes of one scope, *excluding* nested function/class bodies.

    Mirrors how the flow engine interprets: each function is its own scope,
    so a syntactic sweep paired with a ``FlowResult`` must not wander into
    nested defs (their events belong to other ``FlowResult``\\ s).
    """
    stack: List[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(child, _SCOPE_NODES):
                yield child  # the def/class node itself, not its body
                continue
            stack.append(child)


def expr_key(expr: ast.AST) -> Optional[str]:
    """Dotted environment key of a Name / Name-rooted attribute chain."""
    parts: List[str] = []
    node = expr
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def names_in(target: ast.AST) -> Set[str]:
    """Every Name bound by an assignment/loop/comprehension target."""
    names: Set[str] = set()
    for node in ast.walk(target):
        if isinstance(node, ast.Name):
            names.add(node.id)
    return names
