"""rng-flow: shard determinism — one stream per shard, no data-driven draws.

The parallel fit's contract (PR 7, hardened in PR 9) is *fixed-shard
determinism*: at a given shard count, results are bit-identical regardless
of worker count or scheduling.  That holds only if (a) every shard task
owns its **own** generator — ``spawn_rngs(seed, n)`` — and (b) the number
of draws a stage makes does not depend on the data a concurrent shard may
reorder.  Two flow patterns break it:

* **a shared generator fanned into multiple shard tasks** — the same
  rng-tagged value placed into more than one task tuple (an ``append``
  inside the shard loop, a comprehension, or repeated tuple literals)
  consumes one stream in scheduler order, so results vary run to run;
* **a draw under a data-dependent branch** — ``rng.integers(...)`` (or any
  draw method) guarded by a condition whose value carries ``array-data``
  provenance makes the draw *count* depend on shard contents.

The rule only applies inside ``parallel/`` stage engines — that is where
the contract is promised.  Per-shard streams are recognised through the
dataflow engine: elements of a ``spawn_rngs(...)`` result (via
``zip``-loop targets, subscripts, or iteration) are ``rng-fresh`` and
never flagged; config-dependent branches (``isinstance(seed, int)``) are
fine because only ``array-data``-tagged conditions count as data.
"""

from __future__ import annotations

import ast
from typing import FrozenSet, List, Set

from repro.analysis.checkers._flow import FlowChecker, iter_scope, names_in, scope_body
from repro.analysis.core import ModuleContext, ProjectContext
from repro.analysis.registry import register

#: Generator draw methods (stream-consuming).
_DRAW_METHODS = frozenset(
    {
        "integers",
        "random",
        "choice",
        "shuffle",
        "permutation",
        "permuted",
        "normal",
        "standard_normal",
        "uniform",
        "poisson",
        "binomial",
        "exponential",
        "bytes",
    }
)


@register
class RngFlowChecker(FlowChecker):
    rule = "rng-flow"
    description = (
        "parallel stages: one spawn_rngs stream per shard task, "
        "no rng draws under data-dependent branches"
    )

    def check_flow(self, ctx: ModuleContext, flow, project: ProjectContext) -> None:
        if "parallel/" not in ctx.display_path and "parallel/" not in ctx.posix_path():
            return
        for scope in flow.functions:
            submits = [
                event
                for event in scope.calls
                if (event.method == "run" and event.base.has("worker-pool"))
                or (event.method in ("submit", "map") and event.base.has("executor"))
            ]
            if submits:
                self._check_shared_stream(ctx, flow, scope)
            for event in scope.calls:
                if (
                    event.method in _DRAW_METHODS
                    and event.base.has("rng")
                    and "array-data" in event.branch_tags
                ):
                    conditions = "; ".join(event.branch_reprs) or "<condition>"
                    self.report(
                        event.node,
                        f".{event.method}() draw under the data-dependent "
                        f"branch ({conditions}); the draw count now depends "
                        "on shard contents, breaking fixed-shard determinism",
                        provenance=event.base.trace,
                    )

    # -- part A: one stream fanned into many tasks ---------------------
    def _shared_rng_names(self, scope) -> Set[str]:
        return {
            name
            for name, tags in scope.name_tags.items()
            if "rng" in tags and "rng-fresh" not in tags
        }

    def _check_shared_stream(self, ctx: ModuleContext, flow, scope) -> None:
        shared = self._shared_rng_names(scope)
        if not shared:
            return
        events_by_node = scope.calls_by_node()
        for node in iter_scope(scope_body(ctx, scope.fn)):
            if isinstance(node, ast.Call):
                self._check_append(node, events_by_node, shared)
            elif isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.SetComp)):
                self._check_comprehension(node, shared)
            elif isinstance(node, ast.List):
                self._check_list_literal(node, shared)

    def _report_shared(self, name_node: ast.AST, name: str) -> None:
        self.report(
            name_node,
            f"generator {name!r} is fanned into multiple shard tasks; each "
            "task must own its own stream — use spawn_rngs(seed, n_shards) "
            "and pass one generator per task",
        )

    def _check_append(self, node: ast.Call, events_by_node, shared: Set[str]) -> None:
        """``tasks.append((..., rng, ...))`` inside the shard loop."""
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr == "append"):
            return
        event = events_by_node.get(id(node))
        if event is None or not event.loops:
            return  # a single append fans nothing out
        loop_bound: Set[str] = set()
        for loop in event.loops:
            if isinstance(loop, ast.For):
                loop_bound |= names_in(loop.target)
        for arg in node.args:
            for name_node in self._tuple_names(arg):
                if name_node.id in shared and name_node.id not in loop_bound:
                    self._report_shared(name_node, name_node.id)

    def _check_comprehension(self, node, shared: Set[str]) -> None:
        bound: Set[str] = set()
        for generator in node.generators:
            bound |= names_in(generator.target)
        for name_node in self._tuple_names(node.elt):
            if name_node.id in shared and name_node.id not in bound:
                self._report_shared(name_node, name_node.id)

    def _check_list_literal(self, node: ast.List, shared: Set[str]) -> None:
        """``[(0, rng), (1, rng)]`` — the same stream spelled out twice."""
        counts = {}
        first: dict = {}
        for elt in node.elts:
            if not isinstance(elt, (ast.Tuple, ast.List)):
                continue
            seen_here: FrozenSet[str] = frozenset(
                name_node.id
                for name_node in self._tuple_names(elt)
                if name_node.id in shared
            )
            for name in seen_here:
                counts[name] = counts.get(name, 0) + 1
                first.setdefault(name, elt)
        for name, count in sorted(counts.items()):
            if count > 1:
                self._report_shared(first[name], name)

    @staticmethod
    def _tuple_names(node: ast.AST) -> List[ast.Name]:
        """Name loads inside a task payload expression."""
        if isinstance(node, ast.Name):
            return [node]
        if isinstance(node, (ast.Tuple, ast.List)):
            names: List[ast.Name] = []
            for elt in node.elts:
                names.extend(RngFlowChecker._tuple_names(elt))
            return names
        return []
