"""engine-registry: every engine stage keeps a reference twin and a test.

The repo's engine pattern (PRs 1-7) is: a fast engine ships **with** a
``"reference"`` implementation behind the same config switch, and a parity
test pins one against the other.  ``ENGINE_STAGES`` in the core config is
the registry of those switches — ``{stage: (config section, field)}`` —
and this rule makes the registry load-bearing.  For every stage it
verifies, across files:

1. the section resolves to a config dataclass (via the section field's
   annotation or ``field(default_factory=...)``) that actually defines the
   switch field;
2. that config class accepts the engine name ``"reference"`` — the literal
   must appear in the class body or in a module-level constant the class
   references (e.g. an allowed-engines tuple), which is where the
   ``__post_init__`` validators keep their accepted sets;
3. at least one module under the test tree mentions the switch field, so a
   new engine cannot ship without at least a parity test touching its
   switch.

Findings anchor at the stage's entry in the ``ENGINE_STAGES`` literal, so
an inline suppression on that line can exempt a deliberately twin-less
stage.  The rule is project-scoped: it runs once over the whole scan and
stays silent when no ``ENGINE_STAGES`` definition is in scope.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.core import Checker, ModuleContext, ProjectContext
from repro.analysis.registry import register

REGISTRY_NAME = "ENGINE_STAGES"
REFERENCE_ENGINE = "reference"


class _ClassIndex:
    """All class definitions of the scan, with their dataclass-ish fields."""

    def __init__(self, modules: List[ModuleContext]):
        #: class name -> (module, classdef). First definition wins.
        self.classes: Dict[str, Tuple[ModuleContext, ast.ClassDef]] = {}
        for ctx in modules:
            for node in ast.walk(ctx.tree):
                if isinstance(node, ast.ClassDef) and node.name not in self.classes:
                    self.classes[node.name] = (ctx, node)

    @staticmethod
    def fields_of(cls_node: ast.ClassDef) -> Dict[str, Optional[str]]:
        """Field name -> config-class name it is built from (when statable).

        The class name comes from the annotation (``builder:
        GraphBuilderConfig``) or from ``field(default_factory=X)``; plain
        ``name = value`` class attributes count as fields with no class.
        """
        fields: Dict[str, Optional[str]] = {}
        for stmt in cls_node.body:
            if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                fields[stmt.target.id] = _field_class_name(stmt)
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        fields[target.id] = None
        return fields

    def string_constants_visible_from(self, class_name: str) -> Set[str]:
        """String literals in the class body plus referenced module constants.

        Docstrings are excluded: the accepted-engines check must see the
        literal in *code* (a validator's comparison tuple, a default, an
        allowed-engines constant), not in prose that merely mentions it.
        """
        entry = self.classes.get(class_name)
        if entry is None:
            return set()
        ctx, cls_node = entry
        docstrings = _docstring_nodes(cls_node)
        constants: Set[str] = set()
        referenced: Set[str] = set()
        for node in ast.walk(cls_node):
            if (
                isinstance(node, ast.Constant)
                and isinstance(node.value, str)
                and id(node) not in docstrings
            ):
                constants.add(node.value)
            elif isinstance(node, ast.Name):
                referenced.add(node.id)
        # Module-level assignments the class body refers to (allowed-engine
        # tuples like WALK_ENGINES live next to the class, not inside it).
        for stmt in ctx.tree.body:
            if not isinstance(stmt, ast.Assign):
                continue
            names = {t.id for t in stmt.targets if isinstance(t, ast.Name)}
            if names & referenced:
                for node in ast.walk(stmt.value):
                    if isinstance(node, ast.Constant) and isinstance(node.value, str):
                        constants.add(node.value)
        return constants


def _docstring_nodes(cls_node: ast.ClassDef) -> Set[int]:
    """``id()`` of every docstring Constant of the class and its defs."""
    nodes: Set[int] = set()
    for node in ast.walk(cls_node):
        if not isinstance(node, (ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        body = node.body
        if (
            body
            and isinstance(body[0], ast.Expr)
            and isinstance(body[0].value, ast.Constant)
            and isinstance(body[0].value.value, str)
        ):
            nodes.add(id(body[0].value))
    return nodes


def _field_class_name(stmt: ast.AnnAssign) -> Optional[str]:
    if (
        isinstance(stmt.value, ast.Call)
        and isinstance(stmt.value.func, ast.Name)
        and stmt.value.func.id == "field"
    ):
        for keyword in stmt.value.keywords:
            if keyword.arg == "default_factory" and isinstance(keyword.value, ast.Name):
                return keyword.value.id
    if isinstance(stmt.annotation, ast.Name):
        return stmt.annotation.id
    if isinstance(stmt.annotation, ast.Constant) and isinstance(stmt.annotation.value, str):
        return stmt.annotation.value
    return None


def _registry_entries(
    ctx: ModuleContext,
) -> Optional[Tuple[Dict[str, Tuple[str, str, ast.AST]], ast.AST]]:
    """Parse ``ENGINE_STAGES = {stage: (section, field), ...}`` if present."""
    for stmt in ctx.tree.body:
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        if not any(isinstance(t, ast.Name) and t.id == REGISTRY_NAME for t in targets):
            continue
        if not isinstance(value, ast.Dict):
            return None
        entries: Dict[str, Tuple[str, str, ast.AST]] = {}
        for key, item in zip(value.keys, value.values):
            if not (isinstance(key, ast.Constant) and isinstance(key.value, str)):
                continue
            if (
                isinstance(item, (ast.Tuple, ast.List))
                and len(item.elts) == 2
                and all(
                    isinstance(e, ast.Constant) and isinstance(e.value, str)
                    for e in item.elts
                )
            ):
                section = item.elts[0].value
                field_name = item.elts[1].value
                entries[key.value] = (section, field_name, key)
        return entries, stmt
    return None


@register
class EngineRegistryChecker(Checker):
    rule = "engine-registry"
    description = (
        "every ENGINE_STAGES stage resolves to a config field whose "
        'validator accepts "reference" and is referenced by a test module'
    )
    scope = "project"

    def check_project(self, project: ProjectContext):
        self.findings = []
        registry_ctx: Optional[ModuleContext] = None
        entries: Dict[str, Tuple[str, str, ast.AST]] = {}
        for ctx in project.modules:
            parsed = _registry_entries(ctx)
            if parsed is not None:
                entries, _stmt = parsed
                registry_ctx = ctx
                break
        if registry_ctx is None:
            return self.findings

        index = _ClassIndex(project.modules)
        test_sources = project.test_sources()
        for stage, (section, field_name, anchor) in sorted(entries.items()):
            config_class = self._resolve_section_class(index, registry_ctx, section)
            if config_class is None:
                self.report(
                    anchor,
                    f"stage {stage!r}: no config class found for section "
                    f"{section!r} (is the section a field of the top-level "
                    "config dataclass?)",
                    ctx=registry_ctx,
                )
                continue
            fields = index.fields_of(index.classes[config_class][1])
            if field_name not in fields:
                self.report(
                    anchor,
                    f"stage {stage!r}: config class {config_class} has no "
                    f"field {field_name!r}",
                    ctx=registry_ctx,
                )
                continue
            if REFERENCE_ENGINE not in index.string_constants_visible_from(config_class):
                self.report(
                    anchor,
                    f"stage {stage!r}: {config_class}.{field_name} does not "
                    f'accept "{REFERENCE_ENGINE}" — every fast engine needs '
                    "its reference twin behind the same switch",
                    ctx=registry_ctx,
                )
            if test_sources and not self._referenced_in_tests(field_name, test_sources):
                self.report(
                    anchor,
                    f"stage {stage!r}: no test module references the engine "
                    f"switch {field_name!r} — a stage must ship with a parity "
                    "test touching its switch",
                    ctx=registry_ctx,
                )
        return self.findings

    @staticmethod
    def _resolve_section_class(
        index: _ClassIndex, registry_ctx: ModuleContext, section: str
    ) -> Optional[str]:
        """The config class the top-level section field is built from.

        Sections are resolved only against classes defined in the module
        that holds ``ENGINE_STAGES`` — the top-level config dataclass lives
        next to its registry.  Scanning the whole project instead would let
        any unrelated class that happens to share the field name shadow the
        real config (and pass/fail the rule against the wrong class).  The
        field's *stated* class may still live in another module; it is
        looked up through the project-wide index.
        """
        for _name, (ctx, cls_node) in index.classes.items():
            if ctx is not registry_ctx:
                continue
            fields = _ClassIndex.fields_of(cls_node)
            stated = fields.get(section)
            if stated is not None and stated in index.classes:
                return stated
        return None

    @staticmethod
    def _referenced_in_tests(field_name: str, test_sources: Dict) -> bool:
        pattern = re.compile(rf"\b{re.escape(field_name)}\b")
        return any(pattern.search(text) for text in test_sources.values())
