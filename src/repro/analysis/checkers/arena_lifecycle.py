"""arena-lifecycle: every ShmArena reaches close+unlink on all paths.

A :class:`repro.parallel.shm.ShmArena` owns ``/dev/shm`` segments; if an
exception escapes between construction and ``close()`` the segments leak
until reboot (the resource tracker is deliberately disabled on attach, so
nothing else reclaims them).  The arena is a context manager precisely so
the guarantee is structural.

The rule finds every expression whose value the dataflow engine tags
``arena`` — direct ``ShmArena()`` calls *and* factory helpers whose return
provenance carries the tag, through aliases and re-exports — and requires
one of:

* construction as a ``with`` item (``with ShmArena() as arena:``);
* assignment to a name that some ``try``/``finally`` in the same scope
  closes (``finally: arena.close()`` — ``unlink`` counts too);
* ownership transfer: the name is returned, or the arena is assigned to
  ``self.<attr>`` (the instance's own lifecycle then owns it), or the
  construction *is* the return expression of a factory.

Anything else — a bare ``a = ShmArena()`` with a close on the happy path
only, or a constructed-and-dropped arena — is flagged at the construction
site with the provenance chain that tagged it.
"""

from __future__ import annotations

import ast
from typing import List, Set, Tuple

from repro.analysis.checkers._flow import FlowChecker, iter_scope, scope_body
from repro.analysis.core import ModuleContext, ProjectContext
from repro.analysis.registry import register


@register
class ArenaLifecycleChecker(FlowChecker):
    rule = "arena-lifecycle"
    description = (
        "ShmArena must be a with-item or closed in try/finally "
        "(close+unlink guaranteed on all paths)"
    )

    def check_flow(self, ctx: ModuleContext, flow, project: ProjectContext) -> None:
        for scope in flow.functions:
            if scope.fn is None and ctx.path.name == "__init__.py":
                continue  # package re-export modules construct nothing
            arena_calls = {
                id(event.node): event
                for event in scope.calls
                if event.result.has("arena")
            }
            if not arena_calls:
                continue
            body = scope_body(ctx, scope.fn)
            safe, candidates, orphans = self._classify(body, arena_calls)
            protected = self._protected_names(body)
            returned = self._returned_names(body)
            for name, call_node in candidates:
                if name in protected or name in returned:
                    continue
                event = arena_calls[id(call_node)]
                self.report(
                    call_node,
                    f"ShmArena bound to {name!r} without a with-block or a "
                    "try/finally reaching .close(); an exception here leaks "
                    "/dev/shm segments until reboot",
                    provenance=event.result.trace,
                )
            for call_node in orphans:
                if id(call_node) in safe:
                    continue
                event = arena_calls[id(call_node)]
                self.report(
                    call_node,
                    "ShmArena constructed without keeping a handle; nothing "
                    "can ever close+unlink its segments — use "
                    "'with ShmArena() as arena:'",
                    provenance=event.result.trace,
                )

    # -- classification of construction sites --------------------------
    def _classify(self, body, arena_calls):
        """Split arena constructions into safe / named / orphaned sites."""
        safe: Set[int] = set()
        candidates: List[Tuple[str, ast.Call]] = []
        claimed: Set[int] = set()
        for node in iter_scope(body):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    if id(item.context_expr) in arena_calls:
                        safe.add(id(item.context_expr))
                        claimed.add(id(item.context_expr))
            elif isinstance(node, ast.Return):
                if node.value is not None and id(node.value) in arena_calls:
                    safe.add(id(node.value))  # factory: caller owns it
                    claimed.add(id(node.value))
            elif isinstance(node, (ast.Assign, ast.AnnAssign)):
                value = node.value
                if value is None or id(value) not in arena_calls:
                    continue
                claimed.add(id(value))
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    if isinstance(target, ast.Name):
                        candidates.append((target.id, value))
                    elif isinstance(target, ast.Attribute):
                        safe.add(id(value))  # self.<attr>: instance lifecycle
        orphans = [
            event.node
            for event in arena_calls.values()
            if id(event.node) not in claimed and id(event.node) not in safe
        ]
        return safe, candidates, orphans

    @staticmethod
    def _protected_names(body) -> Set[str]:
        """Names with ``.close()``/``.unlink()`` inside some finally block."""
        protected: Set[str] = set()
        for node in iter_scope(body):
            if not isinstance(node, ast.Try):
                continue
            for stmt in node.finalbody:
                for sub in ast.walk(stmt):
                    if (
                        isinstance(sub, ast.Call)
                        and isinstance(sub.func, ast.Attribute)
                        and sub.func.attr in ("close", "unlink")
                        and isinstance(sub.func.value, ast.Name)
                    ):
                        protected.add(sub.func.value.id)
        return protected

    @staticmethod
    def _returned_names(body) -> Set[str]:
        returned: Set[str] = set()
        for node in iter_scope(body):
            if isinstance(node, ast.Return) and isinstance(node.value, ast.Name):
                returned.add(node.value.id)
        return returned
