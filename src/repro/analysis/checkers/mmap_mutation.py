"""mmap-mutation: never write in place through a memory-mapped view.

The serving contract (PR 6/PR 9) is that ``TDMatch.load(mmap=True)`` /
``read_index(mmap=True)`` hand out ``np.memmap(..., mode="r")`` pages
shared read-only between processes.  An in-place write through such a view
either raises ``ValueError: assignment destination is read-only`` at
request time or — worse, via a writable re-map — silently corrupts the
index every other process is serving from.

The rule tracks provenance with the project dataflow engine: any value
whose trace reaches ``load(mmap=True)``, ``load_pipeline(mmap=True)``,
``read_index(mmap=True)`` or ``np.memmap(..., mode="r")`` — through
assignments, tuple unpacking, subscripts, helper-function returns, and
aliased or re-exported imports — is *mmap-tagged*.  Flagged on such
values:

* subscript stores (``arr[i] = x``) and augmented assigns (``arr += x``);
* in-place methods: ``.sort()``, ``.fill()``, ``.partition()``, ``.put()``,
  ``.setflags()``, ``.resize()``, ``.itemset()``;
* ufunc scatter updates (``np.add.at(arr, idx, v)``);
* being the ``out=`` argument of any call.

An intervening ``.copy()`` / ``np.array(view)`` / ``.astype(...)`` clears
the tag — copy first, then mutate.  Each finding carries the provenance
chain in the JSON report (schema v2).
"""

from __future__ import annotations

from repro.analysis.checkers._flow import FlowChecker
from repro.analysis.core import ModuleContext, ProjectContext
from repro.analysis.registry import register

#: ndarray methods that modify the receiver in place.
_MUTATING_METHODS = frozenset(
    {"sort", "fill", "partition", "put", "setflags", "resize", "itemset"}
)


@register
class MmapMutationChecker(FlowChecker):
    rule = "mmap-mutation"
    description = (
        "no in-place writes through load(mmap=True)/np.memmap views; "
        ".copy() before mutating"
    )

    def check_flow(self, ctx: ModuleContext, flow, project: ProjectContext) -> None:
        for scope in flow.functions:
            for mutation in scope.mutations:
                if not mutation.target.has("mmap"):
                    continue
                verb = (
                    "augmented assignment to"
                    if mutation.kind == "augassign"
                    else "subscript store into"
                )
                self.report(
                    mutation.node,
                    f"{verb} memory-mapped value {mutation.target_repr!r}; "
                    "the serving index is read-only — .copy() first",
                    provenance=mutation.target.trace,
                )
            for event in scope.calls:
                if event.method in _MUTATING_METHODS and event.base.has("mmap"):
                    self.report(
                        event.node,
                        f"in-place .{event.method}() on a memory-mapped value; "
                        ".copy() first",
                        provenance=event.base.trace,
                    )
                elif (
                    event.method == "at"
                    and (event.qualname or "").startswith("numpy.")
                    and event.args
                    and event.args[0].has("mmap")
                ):
                    self.report(
                        event.node,
                        "ufunc .at() scatter into a memory-mapped value; "
                        ".copy() first",
                        provenance=event.args[0].trace,
                    )
                elif "out" in event.keywords and event.keywords["out"].has("mmap"):
                    self.report(
                        event.node,
                        "out= targets a memory-mapped value; "
                        "allocate a writable destination instead",
                        provenance=event.keywords["out"].trace,
                    )
