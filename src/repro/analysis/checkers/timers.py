"""timer-discipline: measurement code uses the monotonic clock.

Every published number in ``benchmarks/`` and every ``TimingRegistry``
entry is a difference of two clock reads; ``time.time()`` is wall-clock
and steps under NTP adjustment, which turns a 40 ms stage into a negative
or wildly wrong duration exactly often enough to poison a best-of-N
measurement.  ``time.perf_counter()`` is monotonic with the highest
available resolution and is what :mod:`repro.utils.timing` is built on.

The rule flags calls to ``time.time`` (through any alias of the ``time``
module) and ``from time import time`` itself.  Reading wall-clock for
*timestamps* (log lines, report metadata) is legitimate — spell it
``datetime.now`` or suppress the line with an inline marker to make the
intent explicit.
"""

from __future__ import annotations

import ast
from typing import Set

from repro.analysis.core import Checker, ModuleContext
from repro.analysis.registry import register


@register
class TimerDisciplineChecker(Checker):
    rule = "timer-discipline"
    description = "durations come from time.perf_counter(), never time.time()"

    def __init__(self) -> None:
        super().__init__()
        self._time_aliases: Set[str] = set()
        self._bare_time_fns: Set[str] = set()

    def check_module(self, ctx: ModuleContext, project=None):
        self._time_aliases = set()
        self._bare_time_fns = set()
        return super().check_module(ctx, project)

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name == "time":
                self._time_aliases.add(alias.asname or "time")
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "time" and node.level == 0:
            for alias in node.names:
                if alias.name == "time":
                    self._bare_time_fns.add(alias.asname or "time")
                    self.report(
                        node,
                        "wall-clock time() imported from time; use "
                        "time.perf_counter() for durations",
                    )
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "time"
            and isinstance(func.value, ast.Name)
            and func.value.id in self._time_aliases
        ):
            self.report(
                node,
                "time.time() steps with the wall clock; use "
                "time.perf_counter() for durations",
            )
        elif isinstance(func, ast.Name) and func.id in self._bare_time_fns:
            self.report(
                node,
                "wall-clock time() call; use time.perf_counter() for durations",
            )
        self.generic_visit(node)
