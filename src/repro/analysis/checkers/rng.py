"""rng-discipline: all randomness flows through :mod:`repro.utils.rng`.

The determinism contract of the pipeline is that one top-level seed fixes
every stochastic stage: components accept an ``int | np.random.Generator``
and coerce it with ``ensure_rng`` / ``derive_rng`` / ``spawn_rngs``.  A
single ``np.random.default_rng()`` (fresh OS entropy) or stdlib ``random``
call anywhere else silently breaks seeded-parity tests, so this rule flags:

* ``import random`` / ``from random import ...`` (the stdlib module);
* any call into the ``numpy.random`` *module* namespace —
  ``np.random.default_rng``, ``np.random.seed``, ``np.random.SeedSequence``,
  legacy samplers like ``np.random.rand`` — whether reached through
  ``np``/``numpy`` or a ``from numpy import random`` alias.

Method calls on a ``Generator`` object (``rng.integers(...)``) are the
sanctioned spelling and are never flagged; neither are annotations such as
``np.random.Generator``, which are attribute reads, not calls.  The rule
does not apply inside ``utils/rng.py`` itself — that module is the one
place allowed to mint generators.
"""

from __future__ import annotations

import ast
from typing import Set

from repro.analysis.core import Checker, ModuleContext, path_matches
from repro.analysis.registry import register

#: The only module allowed to call into numpy.random / stdlib random.
ALLOWED_SUFFIX = "utils/rng.py"


@register
class RngDisciplineChecker(Checker):
    rule = "rng-discipline"
    description = (
        "randomness must arrive as a Generator or via utils/rng "
        "(no np.random.* / stdlib random outside utils/rng.py)"
    )

    def __init__(self) -> None:
        super().__init__()
        self._numpy_aliases: Set[str] = set()
        self._numpy_random_aliases: Set[str] = set()
        self._stdlib_random_aliases: Set[str] = set()

    def check_module(self, ctx: ModuleContext, project=None):
        if path_matches(ctx.path, ALLOWED_SUFFIX):
            return []
        self._numpy_aliases = set()
        self._numpy_random_aliases = set()
        self._stdlib_random_aliases = set()
        return super().check_module(ctx, project)

    # -- imports -------------------------------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            bound = alias.asname or alias.name.split(".")[0]
            if alias.name == "numpy" or alias.name.startswith("numpy."):
                self._numpy_aliases.add(bound)
                if alias.name == "numpy.random" and alias.asname:
                    self._numpy_random_aliases.add(alias.asname)
            elif alias.name == "random":
                self._stdlib_random_aliases.add(bound)
                self.report(
                    node,
                    "stdlib random imported; route randomness through "
                    "repro.utils.rng (ensure_rng/derive_rng)",
                )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "random" and node.level == 0:
            self.report(
                node,
                "stdlib random imported; route randomness through "
                "repro.utils.rng (ensure_rng/derive_rng)",
            )
        elif node.module == "numpy" and node.level == 0:
            for alias in node.names:
                if alias.name == "random":
                    self._numpy_random_aliases.add(alias.asname or "random")
        elif node.module == "numpy.random" and node.level == 0:
            names = ", ".join(alias.name for alias in node.names)
            self.report(
                node,
                f"numpy.random imported directly ({names}); obtain generators "
                "via repro.utils.rng (ensure_rng/derive_rng/spawn_rngs)",
            )
        self.generic_visit(node)

    # -- calls ---------------------------------------------------------
    def _is_numpy_random_namespace(self, node: ast.AST) -> bool:
        """True for expressions naming the numpy.random module itself."""
        if isinstance(node, ast.Name):
            return node.id in self._numpy_random_aliases
        if isinstance(node, ast.Attribute) and node.attr == "random":
            return isinstance(node.value, ast.Name) and node.value.id in self._numpy_aliases
        return False

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            if self._is_numpy_random_namespace(func.value):
                self.report(
                    node,
                    f"call to np.random.{func.attr}; obtain generators via "
                    "repro.utils.rng (ensure_rng/derive_rng/spawn_rngs) or "
                    "accept an np.random.Generator argument",
                )
            elif (
                isinstance(func.value, ast.Name)
                and func.value.id in self._stdlib_random_aliases
            ):
                self.report(
                    node,
                    f"call to stdlib random.{func.attr}; route randomness "
                    "through repro.utils.rng",
                )
        self.generic_visit(node)
