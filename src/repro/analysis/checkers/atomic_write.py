"""atomic-write: destination files are written through the durable helper.

A plain ``open(path, "wb")`` against a final destination has a torn-write
window: a crash (or injected fault) between the first ``write()`` and the
close leaves a half-written file that a later reader parses into garbage.
:func:`repro.utils.io.atomic_write` closes the window — same-directory
temp file, fsync, ``os.replace`` — and the reliability suite proves it at
arbitrary byte boundaries, so persistence code must route through it.

The rule flags every ``open()`` / ``*.open()`` call whose mode string is a
static constant starting with ``"w"`` or ``"x"`` (create-and-write modes),
in any module other than ``utils/io.py`` itself.  Read modes and in-place
edit modes (``"r+b"`` — how the fault harness flips bytes) are fine, and a
dynamic mode expression is not guessed at.  Deliberate raw writes (e.g.
crafting hostile files in fixtures) can carry a
``# repro-lint: disable=atomic-write`` suppression.
"""

from __future__ import annotations

import ast
from typing import Optional

from repro.analysis.core import Checker, ModuleContext, path_matches
from repro.analysis.registry import register

#: The durable-writer module allowed to open destinations directly.
ALLOWED_SUFFIX = "utils/io.py"


@register
class AtomicWriteChecker(Checker):
    rule = "atomic-write"
    description = (
        "open(path, 'w'/'wb') on final destinations only inside utils/io.py "
        "(use atomic_write: temp file + fsync + os.replace)"
    )

    def check_module(self, ctx: ModuleContext, project=None):
        if path_matches(ctx.path, ALLOWED_SUFFIX):
            return []
        return super().check_module(ctx, project)

    @staticmethod
    def _is_open(func: ast.AST) -> bool:
        if isinstance(func, ast.Name):
            return func.id == "open"
        if isinstance(func, ast.Attribute):
            return func.attr == "open"
        return False

    @staticmethod
    def _mode_argument(node: ast.Call) -> Optional[ast.AST]:
        # Builtin open(file, mode) takes mode as the second positional;
        # the Path.open(mode) method takes it as the first.
        position = 0 if isinstance(node.func, ast.Attribute) else 1
        mode: Optional[ast.AST] = None
        if len(node.args) > position:
            mode = node.args[position]
        for keyword in node.keywords:
            if keyword.arg == "mode":
                mode = keyword.value
        return mode

    def visit_Call(self, node: ast.Call) -> None:
        if self._is_open(node.func):
            mode = self._mode_argument(node)
            if (
                isinstance(mode, ast.Constant)
                and isinstance(mode.value, str)
                and mode.value[:1] in ("w", "x")
            ):
                self.report(
                    node,
                    f"file opened with mode {mode.value!r} outside utils/io.py; "
                    "write final destinations through atomic_write() so a "
                    "crash mid-write cannot leave a torn file",
                )
        self.generic_visit(node)
