"""Per-function forward dataflow over a CFG-lite of the AST.

:class:`FlowEngine` runs one abstract interpretation per function (and one
over the module body) and records everything the flow checkers consume:

* an **environment** mapping names — including ``self.attr`` dotted paths —
  to abstract :class:`Value`\\ s carrying provenance *tags* (``mmap``,
  ``rng``, ``arena``, ``array-data``, …), a dtype/writability lattice
  element (:mod:`repro.analysis.nptypes`) and a human-readable provenance
  *trace*;
* **transfer functions** for assignments, tuple unpacking, ``with``
  targets, ``for`` targets (including ``zip``/``enumerate`` element-wise
  binding), attribute/subscript reads (views keep their provenance),
  binary operations (fresh array, promoted dtype) and calls to known
  constructors;
* control flow as **branch joins**: ``if``/``while``/``for``/``try``
  bodies are interpreted on copies of the environment and joined
  afterwards, so a tag acquired on either path survives the merge;
* **events** — every call (:class:`CallEvent`, with resolved canonical
  callee, argument values, enclosing-branch tags and loop nesting) and
  every in-place mutation (:class:`MutationEvent`: subscript stores,
  augmented assignments) — plus float32/float64 upcast records.

Calls to module-level functions *inside the scan* propagate provenance
through a return-tag **summary** (:meth:`FlowAnalyses.summary`), memoised
and cycle-guarded, so ``arrays = _open_index(path)`` is as visible to
`mmap-mutation` as a direct ``read_index(path, mmap=True)`` — across
modules, through aliased imports and package re-exports.

The engine runs **once** per module with every rule's sources merged;
checkers share the cached :class:`ModuleFlow` via
``ProjectContext.flow(ctx)``, which is what keeps the project-wide pass
inside the CI time budget.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field, replace
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.analysis import nptypes
from repro.analysis.core import ModuleContext
from repro.analysis.project import ModuleSymbols, ProjectIndex

#: Trace chains are capped so joined provenance stays readable.
_MAX_TRACE = 4

#: Tags whose values are invalidated by an explicit copy.
_COPY_STRIPPED = frozenset({"mmap"})


def _unparse(node: ast.AST, limit: int = 60) -> str:
    try:
        text = ast.unparse(node)
    except Exception:  # pragma: no cover - unparse failures are cosmetic
        text = f"<{type(node).__name__}>"
    return text if len(text) <= limit else text[: limit - 3] + "..."


@dataclass(frozen=True)
class Value:
    """One abstract value: provenance tags × dtype × writability × trace."""

    tags: FrozenSet[str] = frozenset()
    dtype: str = nptypes.DT_BOTTOM
    writability: str = nptypes.W_BOTTOM
    trace: Tuple[str, ...] = ()
    #: Canonical qualname when this value *is* a function/class/module
    #: object (an alias like ``WP = WorkerPool``), not data.
    ref: Optional[str] = None

    def has(self, tag: str) -> bool:
        return tag in self.tags

    def tagged(self, tag: str, site: str) -> "Value":
        return replace(
            self,
            tags=self.tags | {tag},
            trace=(self.trace + (site,))[-_MAX_TRACE:],
            ref=None,
        )

    def join(self, other: "Value") -> "Value":
        if self is other:
            return self
        trace = self.trace + tuple(t for t in other.trace if t not in self.trace)
        return Value(
            tags=self.tags | other.tags,
            dtype=nptypes.join_dtype(self.dtype, other.dtype),
            writability=nptypes.join_writability(self.writability, other.writability),
            trace=trace[-_MAX_TRACE:],
            ref=self.ref if self.ref == other.ref else None,
        )


BOTTOM = Value()


def element_of(value: Value) -> Value:
    """The value obtained by indexing / iterating ``value``.

    Views keep their provenance (a row of a read-only memmap is still
    read-only); an ``rng-list`` (``spawn_rngs``) yields per-element
    generators that are additionally marked ``rng-fresh``, which is how
    the rng-flow rule distinguishes one-stream-per-shard from a shared
    stream.
    """
    tags = set(value.tags)
    if "rng-list" in tags:
        tags.discard("rng-list")
        tags.update(("rng", "rng-fresh"))
    return replace(value, tags=frozenset(tags), ref=None)


@dataclass
class CallEvent:
    """One call site, with everything evaluated at the moment of the call."""

    node: ast.Call
    #: Canonical resolved callee ("repro.parallel.shm.WorkerPool.run"
    #: collapses to the method spelling "<base>.run"); None when dynamic.
    qualname: Optional[str]
    #: Attribute-call method name ("run", "submit", "sort"); None for
    #: plain-name calls.
    method: Optional[str]
    #: Abstract value of the receiver for method calls (BOTTOM otherwise).
    base: Value
    args: List[Value]
    arg_nodes: List[ast.AST]
    keywords: Dict[str, Value]
    keyword_nodes: Dict[str, ast.AST]
    #: Union of tags referenced by every enclosing if/while test.
    branch_tags: FrozenSet[str]
    branch_reprs: Tuple[str, ...]
    #: Enclosing for/while loop nodes, outermost first.
    loops: Tuple[ast.AST, ...]
    #: Abstract value the call evaluates to (filled in by the engine).
    result: Value = BOTTOM

    @property
    def suffix(self) -> str:
        if self.qualname:
            return self.qualname.rsplit(".", 1)[-1]
        return self.method or ""


@dataclass
class MutationEvent:
    """An in-place write: subscript store or augmented assignment."""

    node: ast.AST
    kind: str  # "subscript-store" | "augassign"
    target: Value
    target_repr: str


@dataclass
class UpcastEvent:
    """A float32 × float64 binary operation (silent widening)."""

    node: ast.AST
    left: Value
    right: Value
    repr: str


@dataclass
class FlowResult:
    """Everything recorded while interpreting one function (or module) body."""

    label: str
    fn: Optional[ast.AST]  # FunctionDef / AsyncFunctionDef; None = module body
    calls: List[CallEvent] = field(default_factory=list)
    mutations: List[MutationEvent] = field(default_factory=list)
    upcasts: List[UpcastEvent] = field(default_factory=list)
    #: Union of tags ever bound to each name in this scope.
    name_tags: Dict[str, FrozenSet[str]] = field(default_factory=dict)
    #: Names bound to *nested* function definitions (not picklable by
    #: qualname — the fork-safety rule cares).
    local_defs: Dict[str, ast.AST] = field(default_factory=dict)
    #: Joined value of every ``return`` expression.
    returns: Value = BOTTOM

    def calls_by_node(self) -> Dict[int, CallEvent]:
        return {id(event.node): event for event in self.calls}


@dataclass
class ModuleFlow:
    """All per-function flow results of one module, in source order."""

    ctx: ModuleContext
    functions: List[FlowResult] = field(default_factory=list)

    def for_function(self, fn: ast.AST) -> Optional[FlowResult]:
        for result in self.functions:
            if result.fn is fn:
                return result
        return None


class FlowAnalyses:
    """Cache of per-module flows + cross-function return summaries."""

    def __init__(self, index: ProjectIndex):
        self.index = index
        self._flows: Dict[int, ModuleFlow] = {}
        self._summaries: Dict[str, Value] = {}
        self._in_progress: set = set()

    def module_flow(self, ctx: ModuleContext) -> ModuleFlow:
        cached = self._flows.get(id(ctx))
        if cached is None:
            cached = analyze_module(ctx, self.index, self)
            self._flows[id(ctx)] = cached
        return cached

    def summary(self, qualname: str) -> Value:
        """Return-value provenance of an in-scan module-level function."""
        if qualname in self._summaries:
            return self._summaries[qualname]
        if qualname in self._in_progress:  # recursion: assume nothing
            return BOTTOM
        symbol = self.index.resolve_qualname(qualname)
        node = symbol.node
        if symbol.module is None or not isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef)
        ):
            self._summaries[qualname] = BOTTOM
            return BOTTOM
        self._in_progress.add(qualname)
        try:
            interp = _FlowInterpreter(symbol.module, self.index, self, node.name)
            result = interp.run_function(node)
            summary = replace(result.returns, ref=None)
        finally:
            self._in_progress.discard(qualname)
        self._summaries[qualname] = summary
        return summary


def analyze_module(
    ctx: ModuleContext, index: ProjectIndex, analyses: Optional[FlowAnalyses] = None
) -> ModuleFlow:
    """Interpret every function (and the module body) of one module."""
    module = index.symbols_for(ctx)
    analyses = analyses or FlowAnalyses(index)
    flow = ModuleFlow(ctx=ctx)
    body_interp = _FlowInterpreter(module, index, analyses, "<module>")
    flow.functions.append(body_interp.run_body(ctx.tree.body, fn=None))
    for node in ast.walk(ctx.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            interp = _FlowInterpreter(module, index, analyses, node.name)
            flow.functions.append(interp.run_function(node))
    return flow


# ----------------------------------------------------------------------
# The interpreter
class _FlowInterpreter:
    def __init__(
        self,
        module: ModuleSymbols,
        index: ProjectIndex,
        analyses: FlowAnalyses,
        label: str,
    ):
        self.module = module
        self.index = index
        self.analyses = analyses
        self.result = FlowResult(label=label, fn=None)
        self.env: Dict[str, Value] = {}
        self._branch_stack: List[Tuple[str, FrozenSet[str]]] = []
        self._loop_stack: List[ast.AST] = []

    # -- entry points --------------------------------------------------
    def run_function(self, fn: ast.AST) -> FlowResult:
        self.result.fn = fn
        for arg in self._all_args(fn.args):
            self._bind(arg.arg, self._param_value(arg))
        self._exec_block(fn.body)
        return self.result

    def run_body(self, body: Sequence[ast.stmt], fn: Optional[ast.AST]) -> FlowResult:
        self.result.fn = fn
        self._exec_block(body)
        return self.result

    @staticmethod
    def _all_args(args: ast.arguments) -> List[ast.arg]:
        every = list(getattr(args, "posonlyargs", ())) + list(args.args)
        every += list(args.kwonlyargs)
        for extra in (args.vararg, args.kwarg):
            if extra is not None:
                every.append(extra)
        return every

    def _param_value(self, arg: ast.arg) -> Value:
        annotation = ""
        if arg.annotation is not None:
            annotation = _unparse(arg.annotation, limit=200)
        site = f"parameter {arg.arg!r}"
        value = BOTTOM
        if arg.arg == "rng" or "Generator" in annotation:
            value = value.tagged("rng", site)
        if "ndarray" in annotation or "memmap" in annotation:
            value = value.tagged("array-data", site)
        return value

    # -- environment ---------------------------------------------------
    def _bind(self, key: str, value: Value) -> None:
        self.env[key] = value
        if value.tags:
            self.result.name_tags[key] = (
                self.result.name_tags.get(key, frozenset()) | value.tags
            )

    @staticmethod
    def _expr_key(expr: ast.AST) -> Optional[str]:
        """Environment key of a Name or a Name-rooted attribute chain."""
        parts: List[str] = []
        node = expr
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        parts.append(node.id)
        return ".".join(reversed(parts))

    def _snapshot(self) -> Dict[str, Value]:
        return dict(self.env)

    def _join_env(self, *envs: Dict[str, Value]) -> None:
        merged: Dict[str, Value] = {}
        for env in envs:
            for key, value in env.items():
                merged[key] = merged[key].join(value) if key in merged else value
        self.env = merged

    # -- statements ----------------------------------------------------
    def _exec_block(self, body: Sequence[ast.stmt]) -> None:
        for stmt in body:
            self._exec(stmt)

    def _exec(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            value = self._eval(stmt.value)
            for target in stmt.targets:
                self._assign_target(target, value, stmt.value)
        elif isinstance(stmt, ast.AnnAssign):
            value = self._eval(stmt.value) if stmt.value is not None else BOTTOM
            self._assign_target(stmt.target, value, stmt.value)
        elif isinstance(stmt, ast.AugAssign):
            self._exec_augassign(stmt)
        elif isinstance(stmt, ast.Expr):
            self._eval(stmt.value)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self.result.returns = self.result.returns.join(self._eval(stmt.value))
        elif isinstance(stmt, ast.If):
            self._exec_branching(stmt.test, [stmt.body, stmt.orelse])
        elif isinstance(stmt, ast.While):
            self._loop_stack.append(stmt)
            try:
                self._exec_branching(stmt.test, [stmt.body, stmt.orelse])
            finally:
                self._loop_stack.pop()
        elif isinstance(stmt, ast.For):
            self._exec_for(stmt)
        elif isinstance(stmt, ast.With) or (
            hasattr(ast, "AsyncWith") and isinstance(stmt, ast.AsyncWith)
        ):
            self._exec_with(stmt)
        elif isinstance(stmt, ast.Try) or (
            hasattr(ast, "TryStar") and isinstance(stmt, getattr(ast, "TryStar"))
        ):
            self._exec_try(stmt)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # A nested def: remember it (fork-safety) but do not descend —
            # analyze_module interprets every function separately.
            self.result.local_defs[stmt.name] = stmt
            self._bind(stmt.name, Value(ref=f"<local>.{stmt.name}"))
        elif isinstance(stmt, ast.ClassDef):
            self._bind(stmt.name, Value(ref=f"{self.module.name}.{stmt.name}"))
        elif isinstance(stmt, (ast.Delete,)):
            for target in stmt.targets:
                key = self._expr_key(target)
                if key is not None:
                    self.env.pop(key, None)
        elif isinstance(stmt, (ast.Assert,)):
            self._eval(stmt.test)
        elif isinstance(stmt, (ast.Raise,)):
            if stmt.exc is not None:
                self._eval(stmt.exc)
        # Import/Global/Nonlocal/Pass/Break/Continue: no dataflow effect
        # beyond what ModuleSymbols already indexed.

    def _exec_branching(self, test: ast.expr, branches: List[Sequence[ast.stmt]]) -> None:
        test_value = self._eval(test)
        self._branch_stack.append((_unparse(test), test_value.tags))
        try:
            snapshots = []
            base = self._snapshot()
            for branch in branches:
                self.env = dict(base)
                self._exec_block(branch)
                snapshots.append(self._snapshot())
            self._join_env(*snapshots)
        finally:
            self._branch_stack.pop()

    def _exec_for(self, stmt: ast.For) -> None:
        iter_value = self._eval(stmt.iter)
        base = self._snapshot()
        self._bind_loop_target(stmt.target, stmt.iter, iter_value)
        self._loop_stack.append(stmt)
        try:
            self._exec_block(stmt.body)
        finally:
            self._loop_stack.pop()
        body_env = self._snapshot()
        self.env = dict(base)
        self._exec_block(stmt.orelse)
        self._join_env(body_env, self._snapshot())

    def _bind_loop_target(self, target: ast.AST, iter_expr: ast.AST, iter_value: Value) -> None:
        # zip()/enumerate() bind tuple targets element-wise so a per-shard
        # stream out of ``zip(ranges, rngs)`` keeps its rng-fresh marker.
        if isinstance(target, ast.Tuple) and isinstance(iter_expr, ast.Call):
            callee = self._eval(iter_expr.func).ref or ""
            args = iter_expr.args
            if callee.endswith("zip") and len(args) == len(target.elts):
                for elt, arg in zip(target.elts, args):
                    self._assign_target(elt, element_of(self._eval(arg)), arg)
                return
            if callee.endswith("enumerate") and len(target.elts) == 2 and args:
                self._assign_target(target.elts[0], BOTTOM, None)
                self._assign_target(
                    target.elts[1], element_of(self._eval(args[0])), args[0]
                )
                return
        self._assign_target(target, element_of(iter_value), iter_expr)

    def _exec_with(self, stmt) -> None:
        for item in stmt.items:
            value = self._eval(item.context_expr)
            if item.optional_vars is not None:
                self._assign_target(item.optional_vars, value, item.context_expr)
        self._exec_block(stmt.body)

    def _exec_try(self, stmt) -> None:
        base = self._snapshot()
        self._exec_block(stmt.body)
        body_env = self._snapshot()
        handler_envs = []
        for handler in stmt.handlers:
            self.env = dict(base)
            if handler.name:
                self._bind(handler.name, BOTTOM)
            self._exec_block(handler.body)
            handler_envs.append(self._snapshot())
        self.env = dict(body_env)
        self._exec_block(stmt.orelse)
        self._join_env(self._snapshot(), *handler_envs)
        self._exec_block(stmt.finalbody)

    def _exec_augassign(self, stmt: ast.AugAssign) -> None:
        target_value = self._eval_target_read(stmt.target)
        self._eval(stmt.value)
        self.result.mutations.append(
            MutationEvent(
                node=stmt,
                kind="augassign",
                target=target_value,
                target_repr=_unparse(stmt.target),
            )
        )
        key = self._expr_key(stmt.target)
        if key is not None:
            self._bind(key, target_value)

    def _eval_target_read(self, target: ast.AST) -> Value:
        """The current value of an aug-assign / subscript-store base."""
        if isinstance(target, ast.Subscript):
            return self._eval(target.value)
        return self._eval(target)

    def _assign_target(
        self, target: ast.AST, value: Value, value_expr: Optional[ast.AST]
    ) -> None:
        if isinstance(target, ast.Name):
            self._bind(target.id, value)
        elif isinstance(target, ast.Attribute):
            key = self._expr_key(target)
            if key is not None:
                self._bind(key, value)
        elif isinstance(target, (ast.Tuple, ast.List)):
            elements: Optional[List[Value]] = None
            if isinstance(value_expr, (ast.Tuple, ast.List)) and len(
                value_expr.elts
            ) == len(target.elts):
                elements = [self._eval(elt) for elt in value_expr.elts]
            for position, elt in enumerate(target.elts):
                if isinstance(elt, ast.Starred):
                    self._assign_target(elt.value, element_of(value), None)
                elif elements is not None:
                    self._assign_target(elt, elements[position], None)
                else:
                    self._assign_target(elt, element_of(value), None)
        elif isinstance(target, ast.Subscript):
            base = self._eval(target.value)
            self.result.mutations.append(
                MutationEvent(
                    node=target,
                    kind="subscript-store",
                    target=base,
                    target_repr=_unparse(target.value),
                )
            )
        elif isinstance(target, ast.Starred):
            self._assign_target(target.value, element_of(value), None)

    # -- expressions ---------------------------------------------------
    def _eval(self, expr: Optional[ast.AST]) -> Value:
        if expr is None:
            return BOTTOM
        if isinstance(expr, ast.Name):
            key_value = self.env.get(expr.id)
            if key_value is not None:
                return key_value
            symbol = self.index.resolve_name(self.module, expr.id)
            if symbol is not None:
                return Value(ref=symbol.qualname)
            if expr.id in ("zip", "enumerate", "open", "float", "sorted", "list"):
                return Value(ref=expr.id)
            return BOTTOM
        if isinstance(expr, ast.Attribute):
            key = self._expr_key(expr)
            if key is not None and key in self.env:
                return self.env[key]
            base = self._eval(expr.value)
            if base.ref is not None:
                canonical = self.index.resolve_qualname(f"{base.ref}.{expr.attr}")
                return Value(ref=canonical.qualname)
            # An attribute of a tracked value is a view: keep provenance.
            return replace(base, ref=None)
        if isinstance(expr, ast.Subscript):
            base = self._eval(expr.value)
            self._eval(expr.slice)
            return element_of(base)
        if isinstance(expr, ast.Call):
            return self._eval_call(expr)
        if isinstance(expr, ast.BinOp):
            return self._eval_binop(expr)
        if isinstance(expr, (ast.BoolOp,)):
            value = BOTTOM
            for operand in expr.values:
                value = value.join(self._eval(operand))
            return value
        if isinstance(expr, ast.Compare):
            value = self._eval(expr.left)
            for comparator in expr.comparators:
                value = value.join(self._eval(comparator))
            return replace(value, ref=None)
        if isinstance(expr, ast.UnaryOp):
            return replace(self._eval(expr.operand), ref=None)
        if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
            value = BOTTOM
            for elt in expr.elts:
                elt_value = self._eval(elt.value if isinstance(elt, ast.Starred) else elt)
                value = value.join(elt_value)
            return replace(value, ref=None)
        if isinstance(expr, ast.Dict):
            value = BOTTOM
            for key, val in zip(expr.keys, expr.values):
                if key is not None:
                    self._eval(key)
                value = value.join(self._eval(val))
            return replace(value, ref=None)
        if isinstance(expr, ast.IfExp):
            self._eval(expr.test)
            return self._eval(expr.body).join(self._eval(expr.orelse))
        if isinstance(expr, ast.Starred):
            return element_of(self._eval(expr.value))
        if isinstance(expr, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            return self._eval_comprehension(expr, expr.elt)
        if isinstance(expr, ast.DictComp):
            return self._eval_comprehension(expr, expr.value)
        if isinstance(expr, ast.Lambda):
            return Value(ref="<lambda>")
        if isinstance(expr, ast.Constant):
            return BOTTOM
        if isinstance(expr, (ast.JoinedStr, ast.FormattedValue)):
            for child in ast.iter_child_nodes(expr):
                if isinstance(child, ast.expr):
                    self._eval(child)
            return BOTTOM
        if isinstance(expr, (ast.Await, ast.YieldFrom)):
            return self._eval(expr.value)
        if isinstance(expr, ast.Yield):
            return self._eval(expr.value) if expr.value is not None else BOTTOM
        if isinstance(expr, ast.Slice):
            for part in (expr.lower, expr.upper, expr.step):
                if part is not None:
                    self._eval(part)
            return BOTTOM
        if isinstance(expr, ast.NamedExpr):
            value = self._eval(expr.value)
            self._assign_target(expr.target, value, expr.value)
            return value
        return BOTTOM

    def _eval_comprehension(self, expr, result_expr: ast.expr) -> Value:
        saved = self._snapshot()
        for comp in expr.generators:
            iter_value = self._eval(comp.iter)
            self._bind_loop_target(comp.target, comp.iter, iter_value)
            for condition in comp.ifs:
                self._eval(condition)
        if isinstance(expr, ast.DictComp):
            self._eval(expr.key)
        value = element_of(self._eval(result_expr))
        self.env = saved
        # A comprehension over tagged elements yields a container of them.
        return replace(value, ref=None)

    def _eval_binop(self, expr: ast.BinOp) -> Value:
        left = self._eval(expr.left)
        right = self._eval(expr.right)
        if nptypes.is_upcast(left.dtype, right.dtype):
            self.result.upcasts.append(
                UpcastEvent(node=expr, left=left, right=right, repr=_unparse(expr))
            )
        dtype = nptypes.promote_dtype(left.dtype, right.dtype)
        trace = (left.trace + right.trace)[-_MAX_TRACE:]
        return Value(dtype=dtype, writability=nptypes.W_WRITABLE, trace=trace)

    # -- calls ---------------------------------------------------------
    def _eval_call(self, call: ast.Call) -> Value:
        base = BOTTOM
        method: Optional[str] = None
        if isinstance(call.func, ast.Attribute):
            # Evaluate the receiver once (avoids duplicate events for
            # calls nested in the receiver expression).
            method = call.func.attr
            base = self._eval(call.func.value)
            key = self._expr_key(call.func)
            if key is not None and key in self.env:
                func_value = self.env[key]
            elif base.ref is not None:
                canonical = self.index.resolve_qualname(f"{base.ref}.{method}")
                func_value = Value(ref=canonical.qualname)
            else:
                func_value = replace(base, ref=None)
        else:
            func_value = self._eval(call.func)
        args = [self._eval(arg) for arg in call.args]
        keywords: Dict[str, Value] = {}
        keyword_nodes: Dict[str, ast.AST] = {}
        for keyword in call.keywords:
            value = self._eval(keyword.value)
            if keyword.arg is not None:
                keywords[keyword.arg] = value
                keyword_nodes[keyword.arg] = keyword.value
        qualname = func_value.ref
        event = CallEvent(
            node=call,
            qualname=qualname,
            method=method,
            base=base,
            args=args,
            arg_nodes=list(call.args),
            keywords=keywords,
            keyword_nodes=keyword_nodes,
            branch_tags=frozenset().union(
                *(tags for _, tags in self._branch_stack)
            ) if self._branch_stack else frozenset(),
            branch_reprs=tuple(text for text, _ in self._branch_stack),
            loops=tuple(self._loop_stack),
        )
        self.result.calls.append(event)
        event.result = self._call_result(call, event, func_value)
        return event.result

    def _site(self, call: ast.Call, description: str) -> str:
        ctx = self.module.ctx
        return f"{description} at {ctx.display_path}:{getattr(call, 'lineno', 0)}"

    def _call_result(self, call: ast.Call, event: CallEvent, func_value: Value) -> Value:
        suffix = event.suffix
        qualname = event.qualname or ""
        args = event.args
        keywords = event.keywords

        # -- randomness sources ----------------------------------------
        if suffix in ("ensure_rng", "derive_rng", "default_rng"):
            return BOTTOM.tagged("rng", self._site(call, f"{suffix}(...)"))
        if suffix == "spawn_rngs":
            return BOTTOM.tagged("rng-list", self._site(call, "spawn_rngs(...)"))

        # -- shared-memory / pool constructors -------------------------
        if suffix == "ShmArena":
            return BOTTOM.tagged("arena", self._site(call, "ShmArena()"))
        if suffix == "WorkerPool":
            return BOTTOM.tagged("worker-pool", self._site(call, "WorkerPool(...)"))
        if suffix in ("ProcessPoolExecutor", "ThreadPoolExecutor"):
            return BOTTOM.tagged("executor", self._site(call, f"{suffix}(...)"))
        if qualname == "open":
            return BOTTOM.tagged("file-handle", self._site(call, "open(...)"))
        if suffix == "attached":
            return BOTTOM.tagged("array-data", self._site(call, "attached(...)"))
        if event.method in ("view", "empty", "share") and event.base.has("arena"):
            return BOTTOM.tagged("array-data", self._site(call, f"arena.{event.method}(...)"))

        # -- read-only mmap sources ------------------------------------
        if suffix == "memmap":
            mode = keywords.get("mode")
            mode_node = event.keyword_nodes.get("mode")
            if mode_node is None and len(event.arg_nodes) >= 3:
                mode_node = event.arg_nodes[2]
            if (
                isinstance(mode_node, ast.Constant)
                and isinstance(mode_node.value, str)
                and mode_node.value in ("r", "c")
            ):
                value = BOTTOM.tagged(
                    "mmap", self._site(call, f'np.memmap(mode="{mode_node.value}")')
                )
                return replace(value, writability=nptypes.W_READONLY)
            del mode
            return replace(BOTTOM, writability=nptypes.W_WRITABLE)
        if suffix in ("load", "load_pipeline", "read_index"):
            mmap_node = event.keyword_nodes.get("mmap")
            if isinstance(mmap_node, ast.Constant) and mmap_node.value is True:
                value = BOTTOM.tagged(
                    "mmap", self._site(call, f"{suffix}(mmap=True)")
                )
                return replace(value, writability=nptypes.W_READONLY)
            return BOTTOM

        # -- copies and casts ------------------------------------------
        if event.method == "copy":
            base = event.base
            return replace(
                base,
                tags=base.tags - _COPY_STRIPPED,
                writability=nptypes.W_WRITABLE,
                trace=(base.trace + (self._site(call, ".copy()"),))[-_MAX_TRACE:],
                ref=None,
            )
        if event.method == "astype":
            base = event.base
            dtype_node = event.keyword_nodes.get("dtype")
            if dtype_node is None and event.arg_nodes:
                dtype_node = event.arg_nodes[0]
            return replace(
                base,
                tags=base.tags - _COPY_STRIPPED,
                dtype=nptypes.dtype_from_ast(dtype_node),
                writability=nptypes.W_WRITABLE,
                trace=(base.trace + (self._site(call, ".astype(...)"),))[-_MAX_TRACE:],
                ref=None,
            )
        if qualname.startswith("numpy.") and suffix == "array":
            base = args[0] if args else BOTTOM
            return replace(
                base,
                tags=base.tags - _COPY_STRIPPED,
                writability=nptypes.W_WRITABLE,
                ref=None,
            )
        if qualname.startswith("numpy.") and suffix in ("asarray", "ascontiguousarray"):
            # May or may not copy: provenance is conservatively kept.
            base = args[0] if args else BOTTOM
            dtype_node = event.keyword_nodes.get("dtype")
            if dtype_node is not None:
                base = replace(base, dtype=nptypes.dtype_from_ast(dtype_node))
            return replace(base, ref=None)

        # -- array constructors ----------------------------------------
        if qualname.startswith("numpy.") and suffix in (
            "zeros", "empty", "ones", "full",
            "zeros_like", "empty_like", "ones_like", "full_like",
        ):
            dtype_node = event.keyword_nodes.get("dtype")
            if dtype_node is None:
                position = {"full": 2}.get(suffix, 1)
                if len(event.arg_nodes) > position:
                    dtype_node = event.arg_nodes[position]
            if dtype_node is not None:
                dtype = nptypes.dtype_from_ast(dtype_node)
                return Value(dtype=dtype, writability=nptypes.W_WRITABLE)
            if suffix.endswith("_like") and args:
                return Value(dtype=args[0].dtype, writability=nptypes.W_WRITABLE)
            # numpy's default dtype: float64, and the dtype-discipline rule
            # flags the call itself in float32-annotated modules.
            value = Value(dtype=nptypes.DT_FLOAT64, writability=nptypes.W_WRITABLE)
            return value.tagged("default-dtype", self._site(call, f"np.{suffix}() without dtype"))
        if suffix in ("float64", "float32") and (
            qualname.startswith("numpy.") or qualname in ("float64", "float32")
        ):
            dtype = nptypes.DT_FLOAT64 if suffix == "float64" else nptypes.DT_FLOAT32
            return Value(dtype=dtype, writability=nptypes.W_WRITABLE)
        if qualname.startswith("numpy.") and suffix in (
            "concatenate", "vstack", "hstack", "stack",
        ):
            base = args[0] if args else BOTTOM
            return replace(
                base, tags=base.tags - _COPY_STRIPPED, writability=nptypes.W_WRITABLE, ref=None
            )

        # -- in-scan helper functions: propagate return provenance -----
        if event.qualname:
            symbol = self.index.resolve_qualname(event.qualname)
            if symbol.module is not None and isinstance(
                symbol.node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                summary = self.analyses.summary(symbol.qualname)
                if summary.tags:
                    site = self._site(call, f"via {suffix}(...)")
                    return replace(summary, trace=(summary.trace + (site,))[-_MAX_TRACE:])
        return BOTTOM
