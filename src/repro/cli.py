"""Command-line interface: run, persist, and serve matching experiments.

Subcommands::

    python -m repro.cli run --scenario imdb_wt --size tiny --k 5
    python -m repro.cli fit-save --scenario imdb_wt --index /tmp/imdb.tdm
    python -m repro.cli query --index /tmp/imdb.tdm --k 5 --json

``run`` generates the requested synthetic scenario, runs the W-RW pipeline
(optionally with expansion and compression), evaluates MRR / MAP@k /
HasPositive@k against the gold matches, and prints the result table plus
stage timings.  ``fit-save`` fits a pipeline and writes the single-file
serving index; ``query`` loads that index in a *fresh process* — no fit —
and serves ``match()`` from it, memory-mapping the embeddings by default.

Invoking the module with the pre-subcommand flat flags
(``python -m repro.cli --scenario imdb_wt``) still works and behaves like
``run``.  ``--json`` on any subcommand emits a machine-readable report
instead of the tables.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.core.blocking import TextQueryBlocker, TokenBlocking
from repro.core.config import CompressionConfig, ExpansionConfig, TDMatchConfig
from repro.core.pipeline import TDMatch
from repro.datasets import SCENARIO_GENERATORS, ScenarioSize, generate_scenario
from repro.eval.metrics import evaluate_rankings
from repro.eval.report import format_quality_table, format_table
from repro.parallel.reliability import ReliabilityConfig

_SIZES = {
    "tiny": ScenarioSize.tiny,
    "small": ScenarioSize.small,
    "medium": ScenarioSize.medium,
}

SUBCOMMANDS = ("run", "fit-save", "query")


def _add_scenario_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scenario", default="imdb_wt", choices=sorted(SCENARIO_GENERATORS), help="scenario name")
    parser.add_argument("--size", default="tiny", choices=sorted(_SIZES), help="scenario scale")
    parser.add_argument("--seed", type=int, default=7, help="random seed")


def _add_pipeline_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--num-walks", type=int, default=10, help="random walks per node")
    parser.add_argument("--walk-length", type=int, default=15, help="random walk length")
    parser.add_argument(
        "--graph-engine",
        choices=["bulk", "reference"],
        default="bulk",
        help="graph construction: interned bulk engine (default) or the reference per-term loop",
    )
    parser.add_argument(
        "--walk-engine",
        choices=["csr", "python", "reference"],
        default="csr",
        help="walk implementation: vectorized CSR (default) or reference python "
        "stepping ('reference' is an alias for 'python')",
    )
    parser.add_argument(
        "--retrieval-backend",
        choices=["dense", "blocked"],
        default="dense",
        help="matching backend: exact chunked dense top-k (default) or blocked scoring",
    )
    parser.add_argument(
        "--chunk-size",
        type=int,
        default=1024,
        help="query rows scored per matmul by the dense backend (bounds memory)",
    )
    parser.add_argument(
        "--blocking",
        choices=["token", "neighborhood"],
        help="candidate blocker for the blocked backend (implies --retrieval-backend blocked): "
        "shared-token inverted index or graph neighbourhood",
    )
    parser.add_argument("--vector-size", type=int, default=64, help="embedding dimensionality")
    parser.add_argument("--epochs", type=int, default=2, help="Word2Vec epochs")
    parser.add_argument(
        "--w2v-trainer",
        choices=["vectorized", "reference"],
        default="vectorized",
        help="Word2Vec trainer: vectorized numpy engine (default) or the reference pair loop",
    )
    parser.add_argument("--expansion", action="store_true", help="expand the graph with the scenario KB")
    parser.add_argument(
        "--compression",
        choices=["msp", "ssp", "ssum", "random-node", "random-edge"],
        help="compress the graph before learning embeddings",
    )
    parser.add_argument("--ratio", type=float, default=0.5, help="compression ratio / beta")
    parser.add_argument(
        "--compression-engine",
        choices=["bulk", "reference"],
        default="bulk",
        help="msp/ssp implementation: multi-source CSR BFS (default) or the reference "
        "per-pair path enumeration",
    )
    parser.add_argument(
        "--num-workers",
        type=int,
        default=0,
        help="worker processes sharding the fit's walk/compression/word2vec stages "
        "(0 = serial, the default; results are deterministic per shard count)",
    )
    parser.add_argument(
        "--task-timeout",
        type=float,
        default=None,
        help="seconds a pooled shard task may run before its workers are killed "
        "and the round is retried (default: wait forever)",
    )
    parser.add_argument(
        "--max-retries",
        type=int,
        default=1,
        help="fresh-executor retries after a worker crash/timeout before the pool "
        "degrades or gives up (default: 1)",
    )
    parser.add_argument(
        "--no-degrade",
        action="store_true",
        help="fail the fit when retries are exhausted instead of degrading the "
        "remaining shard tasks to inline serial execution",
    )


def build_parser() -> argparse.ArgumentParser:
    """The legacy flat parser (``run`` semantics, no subcommand)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Run the TDmatch pipeline on a synthetic benchmark scenario.",
    )
    parser.add_argument("--list", action="store_true", help="list available scenarios and exit")
    _add_scenario_arguments(parser)
    parser.add_argument("--k", type=int, default=20, help="top-k candidates per query")
    _add_pipeline_arguments(parser)
    parser.add_argument("--json", action="store_true", help="emit a JSON report instead of tables")
    return parser


def build_fit_save_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro fit-save",
        description="Fit the pipeline on a scenario and write a single-file serving index.",
    )
    _add_scenario_arguments(parser)
    parser.add_argument("--index", required=True, help="output path of the serving index")
    _add_pipeline_arguments(parser)
    parser.add_argument(
        "--mmap-default",
        action="store_true",
        help="record mmap=True as the index's default load mode",
    )
    parser.add_argument("--json", action="store_true", help="emit a JSON report instead of tables")
    return parser


def build_query_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro query",
        description="Load a serving index (no fit) and rank candidates for every query.",
    )
    parser.add_argument("--index", required=True, help="path of a fit-save serving index")
    parser.add_argument("--k", type=int, default=20, help="top-k candidates per query")
    parser.add_argument(
        "--query-side",
        choices=["first", "second"],
        default="first",
        help="which corpus provides the queries",
    )
    mmap_group = parser.add_mutually_exclusive_group()
    mmap_group.add_argument(
        "--mmap", dest="mmap", action="store_true", default=None,
        help="memory-map the embeddings (processes share pages)",
    )
    mmap_group.add_argument(
        "--no-mmap", dest="mmap", action="store_false",
        help="load private writable copies of the embeddings",
    )
    parser.add_argument(
        "--verify",
        choices=["none", "header", "full"],
        default="header",
        help="corruption check before serving: structural only, plus header "
        "checksum (default), or a full CRC of every array blob",
    )
    parser.add_argument("--json", action="store_true", help="emit a JSON report instead of tables")
    return parser


def _config_for(scenario, args: argparse.Namespace) -> TDMatchConfig:
    """Build the pipeline config a ``run``/``fit-save`` invocation asked for."""
    if scenario.task == "text-to-data":
        config = TDMatchConfig.for_text_to_data()
    else:
        config = TDMatchConfig.for_text_tasks()
    config.builder.engine = args.graph_engine
    config.walks.num_walks = args.num_walks
    config.walks.walk_length = args.walk_length
    config.walks.walk_engine = args.walk_engine
    config.word2vec.vector_size = args.vector_size
    config.word2vec.epochs = args.epochs
    config.word2vec.trainer = args.w2v_trainer
    config.parallel.num_workers = args.num_workers
    config.reliability = ReliabilityConfig(
        task_timeout=args.task_timeout,
        max_retries=args.max_retries,
        degrade_serial=not args.no_degrade,
    )
    backend = args.retrieval_backend
    if args.blocking and backend != "blocked":
        backend = "blocked"  # --blocking implies the blocked backend
    config.retrieval.backend = backend
    config.retrieval.chunk_size = args.chunk_size
    if args.blocking:
        config.retrieval.blocking = args.blocking
    if args.expansion and scenario.kb is not None:
        config.expansion = ExpansionConfig(resource=scenario.kb)
    if args.compression:
        config.compression = CompressionConfig(
            enabled=True,
            method=args.compression,
            ratio=args.ratio,
            engine=args.compression_engine,
        )
    return config


def run(args: argparse.Namespace) -> int:
    if args.list:
        rows = [{"scenario": name} for name in sorted(SCENARIO_GENERATORS)]
        print(format_table(rows, title="Available scenarios"))
        return 0

    scenario = generate_scenario(args.scenario, size=_SIZES[args.size](), seed=args.seed)
    config = _config_for(scenario, args)
    emit_json = getattr(args, "json", False)
    if not emit_json:
        print(format_table([scenario.summary()], title="Scenario"))

    pipeline = TDMatch(config, seed=args.seed)
    pipeline.fit(scenario.first, scenario.second)
    if not emit_json:
        print(
            f"\ngraph: {pipeline.graph.num_nodes()} nodes, {pipeline.graph.num_edges()} edges"
        )
        if args.compression:
            comp = pipeline.state.compression
            comp_engine = pipeline.timings.note("compression_engine", "-")
            print(
                f"compression: {comp.method} engine={comp_engine} "
                f"nodes {comp.nodes_before}->{comp.nodes_after} "
                f"edges {comp.edges_before}->{comp.edges_after}"
            )

    # Token blocking needs the corpus texts, which the fitted pipeline does
    # not retain — build the blocker from the scenario and hand it over.
    blocker = None
    if config.retrieval.backend == "blocked" and args.blocking == "token":
        token_blocking = TokenBlocking().fit(scenario.candidate_texts())
        blocker = TextQueryBlocker(token_blocking, scenario.query_texts())

    result = pipeline.match_result(k=args.k, blocker=blocker)
    rankings = result.rankings
    stats = result.retrieval
    report = evaluate_rankings("w-rw", rankings, scenario.gold, ks=(1, 5, min(20, args.k)))

    if emit_json:
        print(
            json.dumps(
                {
                    "scenario": scenario.summary(),
                    "quality": report.as_dict(),
                    "result": result.to_dict(),
                    "report": pipeline.report(),
                },
                indent=2,
                sort_keys=True,
            )
        )
        return 0

    print(
        f"retrieval: backend={stats.backend} scored_pairs={stats.scored_pairs}"
        f"/{stats.all_pairs} reduction_ratio={stats.reduction_ratio:.3f}"
    )
    print()
    print(format_quality_table([report], ks=(1, 5, min(20, args.k)), title="Match quality"))

    timing_rows = [
        {"stage": stage, "seconds": round(seconds, 3)}
        for stage, seconds in pipeline.timings.as_dict().items()
    ]
    print()
    graph_engine = pipeline.timings.note("graph_engine", args.graph_engine)
    engine = pipeline.timings.note("walk_engine", args.walk_engine)
    trainer = pipeline.timings.note("w2v_trainer", args.w2v_trainer)
    pairs_per_sec = pipeline.timings.note("w2v_pairs_per_sec", "-")
    print(
        format_table(
            timing_rows,
            title=(
                f"Stage timings (graph engine: {graph_engine}, walk engine: {engine}, "
                f"w2v trainer: {trainer}, {pairs_per_sec} pairs/s)"
            ),
        )
    )
    return 0


def run_fit_save(args: argparse.Namespace) -> int:
    scenario = generate_scenario(args.scenario, size=_SIZES[args.size](), seed=args.seed)
    config = _config_for(scenario, args)
    config.serving.mmap = bool(args.mmap_default)

    pipeline = TDMatch(config, seed=args.seed)
    pipeline.fit(scenario.first, scenario.second)
    path = pipeline.save(args.index)

    import os

    payload = {
        "index": path,
        "index_bytes": os.path.getsize(path),
        "scenario": scenario.summary(),
        "report": pipeline.report(),
    }
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    print(format_table([scenario.summary()], title="Scenario"))
    print(
        f"\nindex written: {path} ({payload['index_bytes']} bytes, "
        f"{pipeline.graph.num_nodes()} nodes, vocab "
        f"{len(pipeline.model.vocab)}, mmap default: {config.serving.mmap})"
    )
    return 0


def run_query(args: argparse.Namespace) -> int:
    pipeline = TDMatch.load(args.index, mmap=args.mmap, verify=args.verify)
    result = pipeline.match_result(k=args.k, query_side=args.query_side)

    if args.json:
        print(
            json.dumps(
                {"result": result.to_dict(), "report": pipeline.report()},
                indent=2,
                sort_keys=True,
            )
        )
        return 0

    rows = []
    for ranking in result.rankings:
        top = ranking.candidates[0] if ranking.candidates else ("-", float("nan"))
        rows.append(
            {
                "query": ranking.query_id,
                "top candidate": top[0],
                "score": round(float(top[1]), 4),
                "candidates": len(ranking.candidates),
            }
        )
    mmap_note = pipeline.timings.note("serving_mmap", "-")
    print(
        format_table(
            rows,
            title=f"Top-{args.k} serving results ({args.index}, mmap={mmap_note})",
        )
    )
    stats = result.retrieval
    if stats is not None:
        print(
            f"\nretrieval: backend={stats.backend} scored_pairs={stats.scored_pairs}"
            f"/{stats.all_pairs} reduction_ratio={stats.reduction_ratio:.3f}"
        )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    # Subcommand dispatch only when the first token names one; everything
    # else (including no arguments) parses with the legacy flat parser so
    # pre-subcommand invocations keep working unchanged.
    if argv and argv[0] in SUBCOMMANDS:
        command, rest = argv[0], argv[1:]
        if command == "fit-save":
            return run_fit_save(build_fit_save_parser().parse_args(rest))
        if command == "query":
            return run_query(build_query_parser().parse_args(rest))
        return run(build_parser().parse_args(rest))
    return run(build_parser().parse_args(argv))


if __name__ == "__main__":
    sys.exit(main())
