"""Command-line interface: run a full matching experiment on one scenario.

Examples::

    python -m repro.cli --scenario imdb_wt --size tiny --k 5
    python -m repro.cli --scenario audit --expansion --compression msp --ratio 0.5
    python -m repro.cli --scenario imdb_wt --blocking token --k 5
    python -m repro.cli --list

The CLI generates the requested synthetic scenario, runs the W-RW pipeline
(optionally with expansion and compression), evaluates MRR / MAP@k /
HasPositive@k against the gold matches, and prints the result table plus
stage timings.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core.blocking import TextQueryBlocker, TokenBlocking
from repro.core.config import CompressionConfig, ExpansionConfig, TDMatchConfig
from repro.core.pipeline import TDMatch
from repro.datasets import SCENARIO_GENERATORS, ScenarioSize, generate_scenario
from repro.eval.metrics import evaluate_rankings
from repro.eval.report import format_quality_table, format_table

_SIZES = {
    "tiny": ScenarioSize.tiny,
    "small": ScenarioSize.small,
    "medium": ScenarioSize.medium,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Run the TDmatch pipeline on a synthetic benchmark scenario.",
    )
    parser.add_argument("--list", action="store_true", help="list available scenarios and exit")
    parser.add_argument("--scenario", default="imdb_wt", choices=sorted(SCENARIO_GENERATORS), help="scenario name")
    parser.add_argument("--size", default="tiny", choices=sorted(_SIZES), help="scenario scale")
    parser.add_argument("--seed", type=int, default=7, help="random seed")
    parser.add_argument("--k", type=int, default=20, help="top-k candidates per query")
    parser.add_argument("--num-walks", type=int, default=10, help="random walks per node")
    parser.add_argument("--walk-length", type=int, default=15, help="random walk length")
    parser.add_argument(
        "--graph-engine",
        choices=["bulk", "reference"],
        default="bulk",
        help="graph construction: interned bulk engine (default) or the reference per-term loop",
    )
    parser.add_argument(
        "--walk-engine",
        choices=["csr", "python"],
        default="csr",
        help="walk implementation: vectorized CSR (default) or reference python stepping",
    )
    parser.add_argument(
        "--retrieval-backend",
        choices=["dense", "blocked"],
        default="dense",
        help="matching backend: exact chunked dense top-k (default) or blocked scoring",
    )
    parser.add_argument(
        "--chunk-size",
        type=int,
        default=1024,
        help="query rows scored per matmul by the dense backend (bounds memory)",
    )
    parser.add_argument(
        "--blocking",
        choices=["token", "neighborhood"],
        help="candidate blocker for the blocked backend (implies --retrieval-backend blocked): "
        "shared-token inverted index or graph neighbourhood",
    )
    parser.add_argument("--vector-size", type=int, default=64, help="embedding dimensionality")
    parser.add_argument("--epochs", type=int, default=2, help="Word2Vec epochs")
    parser.add_argument(
        "--w2v-trainer",
        choices=["vectorized", "reference"],
        default="vectorized",
        help="Word2Vec trainer: vectorized numpy engine (default) or the reference pair loop",
    )
    parser.add_argument("--expansion", action="store_true", help="expand the graph with the scenario KB")
    parser.add_argument(
        "--compression",
        choices=["msp", "ssp", "ssum", "random-node", "random-edge"],
        help="compress the graph before learning embeddings",
    )
    parser.add_argument("--ratio", type=float, default=0.5, help="compression ratio / beta")
    parser.add_argument(
        "--compression-engine",
        choices=["bulk", "reference"],
        default="bulk",
        help="msp/ssp implementation: multi-source CSR BFS (default) or the reference "
        "per-pair path enumeration",
    )
    return parser


def run(args: argparse.Namespace) -> int:
    if args.list:
        rows = [{"scenario": name} for name in sorted(SCENARIO_GENERATORS)]
        print(format_table(rows, title="Available scenarios"))
        return 0

    scenario = generate_scenario(args.scenario, size=_SIZES[args.size](), seed=args.seed)
    print(format_table([scenario.summary()], title="Scenario"))

    if scenario.task == "text-to-data":
        config = TDMatchConfig.for_text_to_data()
    else:
        config = TDMatchConfig.for_text_tasks()
    config.builder.engine = args.graph_engine
    config.walks.num_walks = args.num_walks
    config.walks.walk_length = args.walk_length
    config.walks.walk_engine = args.walk_engine
    config.word2vec.vector_size = args.vector_size
    config.word2vec.epochs = args.epochs
    config.word2vec.trainer = args.w2v_trainer
    backend = args.retrieval_backend
    if args.blocking and backend != "blocked":
        backend = "blocked"  # --blocking implies the blocked backend
    config.retrieval.backend = backend
    config.retrieval.chunk_size = args.chunk_size
    if args.blocking:
        config.retrieval.blocking = args.blocking
    if args.expansion and scenario.kb is not None:
        config.expansion = ExpansionConfig(resource=scenario.kb)
    if args.compression:
        config.compression = CompressionConfig(
            enabled=True,
            method=args.compression,
            ratio=args.ratio,
            engine=args.compression_engine,
        )

    pipeline = TDMatch(config, seed=args.seed)
    pipeline.fit(scenario.first, scenario.second)
    print(
        f"\ngraph: {pipeline.graph.num_nodes()} nodes, {pipeline.graph.num_edges()} edges"
    )
    if args.compression:
        comp = pipeline.state.compression
        comp_engine = pipeline.timings.note("compression_engine", "-")
        print(
            f"compression: {comp.method} engine={comp_engine} "
            f"nodes {comp.nodes_before}->{comp.nodes_after} "
            f"edges {comp.edges_before}->{comp.edges_after}"
        )

    # Token blocking needs the corpus texts, which the fitted pipeline does
    # not retain — build the blocker from the scenario and hand it over.
    blocker = None
    if backend == "blocked" and args.blocking == "token":
        token_blocking = TokenBlocking().fit(scenario.candidate_texts())
        blocker = TextQueryBlocker(token_blocking, scenario.query_texts())

    result = pipeline.match_result(k=args.k, blocker=blocker)
    rankings = result.rankings
    stats = result.retrieval
    print(
        f"retrieval: backend={stats.backend} scored_pairs={stats.scored_pairs}"
        f"/{stats.all_pairs} reduction_ratio={stats.reduction_ratio:.3f}"
    )
    report = evaluate_rankings("w-rw", rankings, scenario.gold, ks=(1, 5, min(20, args.k)))
    print()
    print(format_quality_table([report], ks=(1, 5, min(20, args.k)), title="Match quality"))

    timing_rows = [
        {"stage": stage, "seconds": round(seconds, 3)}
        for stage, seconds in pipeline.timings.as_dict().items()
    ]
    print()
    graph_engine = pipeline.timings.note("graph_engine", args.graph_engine)
    engine = pipeline.timings.note("walk_engine", args.walk_engine)
    trainer = pipeline.timings.note("w2v_trainer", args.w2v_trainer)
    pairs_per_sec = pipeline.timings.note("w2v_pairs_per_sec", "-")
    print(
        format_table(
            timing_rows,
            title=(
                f"Stage timings (graph engine: {graph_engine}, walk engine: {engine}, "
                f"w2v trainer: {trainer}, {pairs_per_sec} pairs/s)"
            ),
        )
    )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return run(args)


if __name__ == "__main__":
    sys.exit(main())
