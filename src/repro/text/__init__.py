"""Text-processing substrate: tokenization, stop words, stemming, n-grams.

These are the pre-processing steps of Section II of the paper: every cell
value and every text sentence is tokenised, lower-cased, stripped of stop
words, and stemmed before it becomes a *term* (data node) of the graph.
"""

from repro.text.tokenizer import Tokenizer, tokenize
from repro.text.stopwords import STOP_WORDS, is_stop_word
from repro.text.stemmer import PorterStemmer, stem
from repro.text.ngrams import generate_ngrams, ngram_terms
from repro.text.preprocess import (
    Preprocessor,
    PreprocessConfig,
    TermInterner,
    unique_in_order,
)

__all__ = [
    "Tokenizer",
    "tokenize",
    "STOP_WORDS",
    "is_stop_word",
    "PorterStemmer",
    "stem",
    "generate_ngrams",
    "ngram_terms",
    "Preprocessor",
    "PreprocessConfig",
    "TermInterner",
    "unique_in_order",
]
