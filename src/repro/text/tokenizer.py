"""Word tokenizer used for both text documents and table cells.

The paper tokenises on word boundaries, keeps numbers (they are later merged
by bucketing), and lower-cases everything.  We additionally normalise unicode
punctuation so that user-submitted sentences (CoronaCheck "Usr") and clean
generated sentences tokenize identically.
"""

from __future__ import annotations

import re
import unicodedata
from dataclasses import dataclass
from typing import List, Sequence

_WORD_RE = re.compile(r"[A-Za-z]+(?:'[A-Za-z]+)?|\d+(?:[.,]\d+)*")

_PUNCT_TRANSLATION = {
    "‘": "'",
    "’": "'",
    "“": '"',
    "”": '"',
    "–": "-",
    "—": "-",
    " ": " ",
}


def _normalise(text: str) -> str:
    """Normalise unicode and smart punctuation to plain ASCII equivalents."""
    text = unicodedata.normalize("NFKC", text)
    for src, dst in _PUNCT_TRANSLATION.items():
        text = text.replace(src, dst)
    return text


def tokenize(text: str, lowercase: bool = True) -> List[str]:
    """Split ``text`` into word and number tokens.

    >>> tokenize("The Sixth Sense, 1999!")
    ['the', 'sixth', 'sense', '1999']
    """
    if not isinstance(text, str):
        text = str(text)
    text = _normalise(text)
    tokens = _WORD_RE.findall(text)
    if lowercase:
        tokens = [t.lower() for t in tokens]
    return tokens


@dataclass
class Tokenizer:
    """Configurable tokenizer.

    Parameters
    ----------
    lowercase:
        Lower-case tokens (default: True).
    min_token_length:
        Drop tokens shorter than this many characters (numbers are kept
        regardless so that years and counts survive).
    keep_numbers:
        Whether numeric tokens are kept at all.
    """

    lowercase: bool = True
    min_token_length: int = 1
    keep_numbers: bool = True

    def __call__(self, text: str) -> List[str]:
        return self.tokenize(text)

    def tokenize(self, text: str) -> List[str]:
        tokens = tokenize(text, lowercase=self.lowercase)
        result: List[str] = []
        for token in tokens:
            if token[0].isdigit():
                if self.keep_numbers:
                    result.append(token)
                continue
            if len(token) >= self.min_token_length:
                result.append(token)
        return result

    def tokenize_all(self, texts: Sequence[str]) -> List[List[str]]:
        """Tokenize a sequence of texts."""
        return [self.tokenize(t) for t in texts]


def is_numeric_token(token: str) -> bool:
    """Return True when the token represents a number (int or decimal)."""
    if not token:
        return False
    cleaned = token.replace(",", "")
    try:
        float(cleaned)
    except ValueError:
        return False
    return True


def parse_numeric_token(token: str) -> float:
    """Parse a numeric token produced by :func:`tokenize` into a float."""
    return float(token.replace(",", ""))
