"""n-gram term generation (Section II-D of the paper).

Multi-token terms such as movie titles carry information that is lost when
each token becomes its own data node.  The paper therefore creates data nodes
for *every* n-gram of a text up to ``max_n`` tokens (default 3, calibrated on
Wikipedia article titles: ~99% have at most three tokens).  For "The Sixth
Sense" with n=3 the graph contains the terms ``six``, ``sense``, ``the six``,
``six sense``, and ``the six sense`` (after stemming / stop-word handling).
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

DEFAULT_MAX_NGRAM = 3


def generate_ngrams(tokens: Sequence[str], max_n: int = DEFAULT_MAX_NGRAM) -> List[str]:
    """Return all contiguous n-grams of ``tokens`` for n in 1..max_n.

    n-grams are joined with a single space.  Order follows increasing n and
    left-to-right position, and duplicates are preserved (the caller decides
    whether term multiplicity matters).

    >>> generate_ngrams(["the", "sixth", "sense"], max_n=2)
    ['the', 'sixth', 'sense', 'the sixth', 'sixth sense']
    """
    if max_n < 1:
        raise ValueError("max_n must be >= 1")
    tokens = list(tokens)
    ngrams: List[str] = []
    for n in range(1, max_n + 1):
        if n > len(tokens):
            break
        for i in range(len(tokens) - n + 1):
            ngrams.append(" ".join(tokens[i : i + n]))
    return ngrams


def ngram_terms(tokens: Sequence[str], max_n: int = DEFAULT_MAX_NGRAM) -> List[str]:
    """Unique n-gram terms of ``tokens``, preserving first-occurrence order."""
    seen = set()
    ordered: List[str] = []
    for gram in generate_ngrams(tokens, max_n=max_n):
        if gram not in seen:
            seen.add(gram)
            ordered.append(gram)
    return ordered


def count_new_terms(documents: Iterable[Sequence[str]], max_n: int) -> int:
    """Number of distinct terms produced over ``documents`` for a given n.

    Used by the ablation of Section V-F1 to report how many new nodes each
    increase of n adds to the graph.
    """
    distinct = set()
    for tokens in documents:
        distinct.update(generate_ngrams(tokens, max_n=max_n))
    return len(distinct)
