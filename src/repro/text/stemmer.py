"""Porter stemmer.

A self-contained implementation of the Porter (1980) stemming algorithm.
Stemming serves two purposes in the paper: it normalises terms before data
nodes are created, and it *merges* data nodes that are inflections of the
same word (e.g. "planning" and "Plan" in the audit taxonomy example of
Figure 2), which shortens the paths between related metadata nodes.
"""

from __future__ import annotations

from typing import Iterable, List

_VOWELS = "aeiou"


def _is_consonant(word: str, i: int) -> bool:
    ch = word[i]
    if ch in _VOWELS:
        return False
    if ch == "y":
        if i == 0:
            return True
        return not _is_consonant(word, i - 1)
    return True


def _measure(stem: str) -> int:
    """Return m, the number of VC sequences in the stem."""
    m = 0
    i = 0
    n = len(stem)
    # Skip initial consonants.
    while i < n and _is_consonant(stem, i):
        i += 1
    while i < n:
        # Skip vowels.
        while i < n and not _is_consonant(stem, i):
            i += 1
        if i >= n:
            break
        m += 1
        # Skip consonants.
        while i < n and _is_consonant(stem, i):
            i += 1
    return m


def _contains_vowel(stem: str) -> bool:
    return any(not _is_consonant(stem, i) for i in range(len(stem)))


def _ends_double_consonant(word: str) -> bool:
    if len(word) < 2:
        return False
    return word[-1] == word[-2] and _is_consonant(word, len(word) - 1)


def _ends_cvc(word: str) -> bool:
    if len(word) < 3:
        return False
    if (
        _is_consonant(word, len(word) - 3)
        and not _is_consonant(word, len(word) - 2)
        and _is_consonant(word, len(word) - 1)
    ):
        return word[-1] not in "wxy"
    return False


class PorterStemmer:
    """Porter stemming algorithm (five rule steps)."""

    def stem(self, word: str) -> str:
        """Return the stem of ``word`` (expects a lower-case token)."""
        if len(word) <= 2:
            return word
        word = word.lower()
        word = self._step1a(word)
        word = self._step1b(word)
        word = self._step1c(word)
        word = self._step2(word)
        word = self._step3(word)
        word = self._step4(word)
        word = self._step5a(word)
        word = self._step5b(word)
        return word

    def stem_all(self, words: Iterable[str]) -> List[str]:
        return [self.stem(w) for w in words]

    # -- step 1a ----------------------------------------------------------
    @staticmethod
    def _step1a(word: str) -> str:
        if word.endswith("sses"):
            return word[:-2]
        if word.endswith("ies"):
            return word[:-2]
        if word.endswith("ss"):
            return word
        if word.endswith("s"):
            return word[:-1]
        return word

    # -- step 1b ----------------------------------------------------------
    def _step1b(self, word: str) -> str:
        if word.endswith("eed"):
            stem = word[:-3]
            if _measure(stem) > 0:
                return word[:-1]
            return word
        flag = False
        if word.endswith("ed"):
            stem = word[:-2]
            if _contains_vowel(stem):
                word = stem
                flag = True
        elif word.endswith("ing"):
            stem = word[:-3]
            if _contains_vowel(stem):
                word = stem
                flag = True
        if flag:
            if word.endswith(("at", "bl", "iz")):
                return word + "e"
            if _ends_double_consonant(word) and word[-1] not in "lsz":
                return word[:-1]
            if _measure(word) == 1 and _ends_cvc(word):
                return word + "e"
        return word

    # -- step 1c ----------------------------------------------------------
    @staticmethod
    def _step1c(word: str) -> str:
        if word.endswith("y") and _contains_vowel(word[:-1]):
            return word[:-1] + "i"
        return word

    # -- step 2 -----------------------------------------------------------
    _STEP2_SUFFIXES = [
        ("ational", "ate"),
        ("tional", "tion"),
        ("enci", "ence"),
        ("anci", "ance"),
        ("izer", "ize"),
        ("abli", "able"),
        ("alli", "al"),
        ("entli", "ent"),
        ("eli", "e"),
        ("ousli", "ous"),
        ("ization", "ize"),
        ("ation", "ate"),
        ("ator", "ate"),
        ("alism", "al"),
        ("iveness", "ive"),
        ("fulness", "ful"),
        ("ousness", "ous"),
        ("aliti", "al"),
        ("iviti", "ive"),
        ("biliti", "ble"),
    ]

    def _step2(self, word: str) -> str:
        for suffix, replacement in self._STEP2_SUFFIXES:
            if word.endswith(suffix):
                stem = word[: -len(suffix)]
                if _measure(stem) > 0:
                    return stem + replacement
                return word
        return word

    # -- step 3 -----------------------------------------------------------
    _STEP3_SUFFIXES = [
        ("icate", "ic"),
        ("ative", ""),
        ("alize", "al"),
        ("iciti", "ic"),
        ("ical", "ic"),
        ("ful", ""),
        ("ness", ""),
    ]

    def _step3(self, word: str) -> str:
        for suffix, replacement in self._STEP3_SUFFIXES:
            if word.endswith(suffix):
                stem = word[: -len(suffix)]
                if _measure(stem) > 0:
                    return stem + replacement
                return word
        return word

    # -- step 4 -----------------------------------------------------------
    _STEP4_SUFFIXES = [
        "al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement",
        "ment", "ent", "ou", "ism", "ate", "iti", "ous", "ive", "ize",
    ]

    def _step4(self, word: str) -> str:
        for suffix in self._STEP4_SUFFIXES:
            if word.endswith(suffix):
                stem = word[: -len(suffix)]
                if _measure(stem) > 1:
                    return stem
                return word
        if word.endswith("ion"):
            stem = word[:-3]
            if stem and stem[-1] in "st" and _measure(stem) > 1:
                return stem
        return word

    # -- step 5 -----------------------------------------------------------
    @staticmethod
    def _step5a(word: str) -> str:
        if word.endswith("e"):
            stem = word[:-1]
            m = _measure(stem)
            if m > 1:
                return stem
            if m == 1 and not _ends_cvc(stem):
                return stem
        return word

    @staticmethod
    def _step5b(word: str) -> str:
        if _measure(word) > 1 and _ends_double_consonant(word) and word.endswith("l"):
            return word[:-1]
        return word


_DEFAULT_STEMMER = PorterStemmer()


def stem(word: str) -> str:
    """Stem ``word`` with a module-level :class:`PorterStemmer` instance."""
    return _DEFAULT_STEMMER.stem(word)
