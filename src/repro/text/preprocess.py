"""End-to-end pre-processing: tokenize → remove stop words → stem → n-grams.

This module turns raw strings (text sentences, paragraphs, table cell
values) into the list of *terms* that become data nodes in the graph
(Section II of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.text.ngrams import DEFAULT_MAX_NGRAM, ngram_terms
from repro.text.stemmer import PorterStemmer
from repro.text.stopwords import STOP_WORDS
from repro.text.tokenizer import Tokenizer


@dataclass
class PreprocessConfig:
    """Configuration of the pre-processing stage.

    Parameters
    ----------
    max_ngram:
        Maximum number of tokens per term (paper default: 3).
    remove_stopwords:
        Drop stop words before term generation.
    apply_stemming:
        Stem tokens with the Porter stemmer; stemming also acts as the first
        node-merging technique of Section II-C.
    lowercase:
        Lower-case tokens.
    min_token_length:
        Minimum character length for alphabetic tokens.
    keep_numbers:
        Keep numeric tokens (merged later via bucketing).
    """

    max_ngram: int = DEFAULT_MAX_NGRAM
    remove_stopwords: bool = True
    apply_stemming: bool = True
    lowercase: bool = True
    min_token_length: int = 2
    keep_numbers: bool = True


@dataclass
class Preprocessor:
    """Stateless text-to-terms transformer with a small memoisation cache."""

    config: PreprocessConfig = field(default_factory=PreprocessConfig)

    def __post_init__(self) -> None:
        self._tokenizer = Tokenizer(
            lowercase=self.config.lowercase,
            min_token_length=self.config.min_token_length,
            keep_numbers=self.config.keep_numbers,
        )
        self._stemmer = PorterStemmer()
        self._stem_cache: Dict[str, str] = {}

    # ------------------------------------------------------------------
    def tokens(self, text: str) -> List[str]:
        """Raw tokens of ``text`` after stop-word removal and stemming."""
        tokens = self._tokenizer.tokenize(text)
        if self.config.remove_stopwords:
            tokens = [t for t in tokens if t not in STOP_WORDS]
        if self.config.apply_stemming:
            tokens = [self._stem(t) for t in tokens]
        return tokens

    def terms(self, text: str, max_ngram: Optional[int] = None) -> List[str]:
        """All unique n-gram terms of ``text`` (the graph's data nodes)."""
        n = self.config.max_ngram if max_ngram is None else max_ngram
        return ngram_terms(self.tokens(text), max_n=n)

    def terms_of_values(
        self, values: Sequence[str], max_ngram: Optional[int] = None
    ) -> List[str]:
        """Terms of a sequence of values (e.g. the cells of a tuple).

        Each value is pre-processed independently so that n-grams never span
        two different cells.
        """
        seen = set()
        ordered: List[str] = []
        for value in values:
            for term in self.terms(value, max_ngram=max_ngram):
                if term not in seen:
                    seen.add(term)
                    ordered.append(term)
        return ordered

    # ------------------------------------------------------------------
    def _stem(self, token: str) -> str:
        if token[0].isdigit():
            return token
        cached = self._stem_cache.get(token)
        if cached is None:
            cached = self._stemmer.stem(token)
            self._stem_cache[token] = cached
        return cached
