"""End-to-end pre-processing: tokenize → remove stop words → stem → n-grams.

This module turns raw strings (text sentences, paragraphs, table cell
values) into the list of *terms* that become data nodes in the graph
(Section II of the paper).

:class:`TermInterner` is the bulk-construction entry point: it memoises the
whole pipeline per distinct input value and hands terms out as dense int
ids, so a cell value that repeats across ten thousand rows is tokenised,
stemmed and n-gram'd exactly once.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.text.ngrams import DEFAULT_MAX_NGRAM, ngram_terms
from repro.text.stemmer import PorterStemmer
from repro.text.stopwords import STOP_WORDS
from repro.text.tokenizer import Tokenizer


@dataclass
class PreprocessConfig:
    """Configuration of the pre-processing stage.

    Parameters
    ----------
    max_ngram:
        Maximum number of tokens per term (paper default: 3).
    remove_stopwords:
        Drop stop words before term generation.
    apply_stemming:
        Stem tokens with the Porter stemmer; stemming also acts as the first
        node-merging technique of Section II-C.
    lowercase:
        Lower-case tokens.
    min_token_length:
        Minimum character length for alphabetic tokens.
    keep_numbers:
        Keep numeric tokens (merged later via bucketing).
    """

    max_ngram: int = DEFAULT_MAX_NGRAM
    remove_stopwords: bool = True
    apply_stemming: bool = True
    lowercase: bool = True
    min_token_length: int = 2
    keep_numbers: bool = True

    def __post_init__(self) -> None:
        if self.max_ngram < 1:
            raise ValueError("max_ngram must be >= 1")
        if self.min_token_length < 1:
            raise ValueError("min_token_length must be >= 1")


@dataclass
class Preprocessor:
    """Stateless text-to-terms transformer with a small memoisation cache."""

    config: PreprocessConfig = field(default_factory=PreprocessConfig)

    def __post_init__(self) -> None:
        self._tokenizer = Tokenizer(
            lowercase=self.config.lowercase,
            min_token_length=self.config.min_token_length,
            keep_numbers=self.config.keep_numbers,
        )
        self._stemmer = PorterStemmer()
        self._stem_cache: Dict[str, str] = {}

    # ------------------------------------------------------------------
    def tokens(self, text: str) -> List[str]:
        """Raw tokens of ``text`` after stop-word removal and stemming."""
        tokens = self._tokenizer.tokenize(text)
        if self.config.remove_stopwords:
            tokens = [t for t in tokens if t not in STOP_WORDS]
        if self.config.apply_stemming:
            tokens = [self._stem(t) for t in tokens]
        return tokens

    def terms(self, text: str, max_ngram: Optional[int] = None) -> List[str]:
        """All unique n-gram terms of ``text`` (the graph's data nodes)."""
        n = self.config.max_ngram if max_ngram is None else max_ngram
        return ngram_terms(self.tokens(text), max_n=n)

    def terms_of_values(
        self, values: Sequence[str], max_ngram: Optional[int] = None
    ) -> List[str]:
        """Terms of a sequence of values (e.g. the cells of a tuple).

        Each value is pre-processed independently so that n-grams never span
        two different cells.
        """
        seen = set()
        ordered: List[str] = []
        for value in values:
            for term in self.terms(value, max_ngram=max_ngram):
                if term not in seen:
                    seen.add(term)
                    ordered.append(term)
        return ordered

    # ------------------------------------------------------------------
    def _stem(self, token: str) -> str:
        if token[0].isdigit():
            return token
        cached = self._stem_cache.get(token)
        if cached is None:
            cached = self._stemmer.stem(token)
            self._stem_cache[token] = cached
        return cached


def unique_in_order(parts: Sequence[np.ndarray]) -> np.ndarray:
    """Concatenate int-id arrays and keep first occurrences in order.

    The vectorised equivalent of :meth:`Preprocessor.terms_of_values`'s
    seen-set dedup, for interned term ids.  Always returns a fresh array.
    """
    parts = [p for p in parts if p.size]
    if not parts:
        return np.empty(0, dtype=np.int32)
    combined = parts[0] if len(parts) == 1 else np.concatenate(parts)
    _values, first = np.unique(combined, return_index=True)
    first.sort()
    return combined[first]


class TermInterner:
    """Value-level memo over a :class:`Preprocessor`, emitting dense int ids.

    Every distinct input string runs through tokenize → stem → n-grams
    exactly once; the resulting terms are interned so that downstream code
    (filtering, graph emission, the CSR walk snapshot) can operate on int
    arrays and only translate back to strings at the boundary.

    Ids are dense and assigned in first-intern order, so ``terms[i]`` is the
    term with id ``i``.  The arrays returned by :meth:`term_ids` are cached —
    treat them as read-only.
    """

    #: Default `reset_if_larger_than` bounds for persistent use (see
    #: GraphBuilder): caps both the entry count and — because memo keys are
    #: the raw input strings, which for text corpora are whole documents —
    #: the accumulated key bytes a long-lived interner can retain.
    DEFAULT_MAX_CACHED_VALUES = 500_000
    DEFAULT_MAX_CACHED_CHARS = 64_000_000

    def __init__(self, preprocessor: Preprocessor):
        self.preprocessor = preprocessor
        self._terms: List[str] = []
        self._ids: Dict[str, int] = {}
        self._value_cache: Dict[str, np.ndarray] = {}
        self._cached_chars = 0

    def __len__(self) -> int:
        return len(self._terms)

    def reset(self) -> None:
        """Drop all interned terms and the value memo.

        Ids restart from zero, so cached arrays from before the reset must
        not be mixed with arrays interned after it — only call between
        independent uses (the bulk graph builder resets between builds).
        """
        self._terms = []
        self._ids = {}
        self._value_cache = {}
        self._cached_chars = 0

    def reset_if_larger_than(
        self,
        max_cached_values: int = DEFAULT_MAX_CACHED_VALUES,
        max_cached_chars: int = DEFAULT_MAX_CACHED_CHARS,
    ) -> bool:
        """Reset when the value memo outgrew either bound.

        Bounds the memory of a persistently reused interner: a sweep over
        ever-changing corpora otherwise retains every document string it
        has ever seen.  Returns True when a reset happened.
        """
        if len(self._value_cache) > max_cached_values or self._cached_chars > max_cached_chars:
            self.reset()
            return True
        return False

    @property
    def terms(self) -> List[str]:
        """The id → term table (do not mutate)."""
        return self._terms

    def term_of(self, term_id: int) -> str:
        return self._terms[term_id]

    def id_of(self, term: str) -> int:
        """Intern ``term`` and return its dense id."""
        existing = self._ids.get(term)
        if existing is not None:
            return existing
        new_id = len(self._terms)
        self._ids[term] = new_id
        self._terms.append(term)
        return new_id

    def term_ids(self, text: str) -> np.ndarray:
        """Interned term ids of ``text``, memoised per distinct value."""
        ids = self._value_cache.get(text)
        if ids is None:
            # Inlined interning: this is the hottest loop of bulk graph
            # construction, so no per-term method call.
            ids_map = self._ids
            table = self._terms
            out = []
            for term in self.preprocessor.terms(text):
                term_id = ids_map.get(term)
                if term_id is None:
                    term_id = len(table)
                    ids_map[term] = term_id
                    table.append(term)
                out.append(term_id)
            ids = np.array(out, dtype=np.int32)
            self._value_cache[text] = ids
            self._cached_chars += len(text)
        return ids

    def term_ids_of_values(self, values: Sequence[str]) -> np.ndarray:
        """Unique term ids over ``values`` (cells of a tuple), in order.

        Mirrors :meth:`Preprocessor.terms_of_values`: values are processed
        independently (n-grams never span cells) and duplicates keep their
        first position.
        """
        return unique_in_order([self.term_ids(str(value)) for value in values])

    def decode(self, ids: Sequence[int]) -> List[str]:
        """Translate an id sequence back to term strings."""
        terms = self._terms
        return [terms[int(i)] for i in ids]
