"""Word lists used by the synthetic scenario generators.

These lists define the "world" the generators draw from: person names,
movie-title words, genres, countries, audit concepts, claim topics, and a
general English vocabulary.  Keeping them in one module makes the overlap
structure between corpora explicit and auditable.
"""

from __future__ import annotations

from typing import Dict, List

FIRST_NAMES: List[str] = [
    "bruce", "quentin", "samuel", "uma", "john", "mary", "sofia", "david",
    "emma", "lucas", "olivia", "noah", "ava", "liam", "mia", "ethan",
    "isabella", "james", "charlotte", "benjamin", "amelia", "henry", "luna",
    "alex", "grace", "daniel", "chloe", "matthew", "zoe", "ryan", "nora",
    "kate", "peter", "laura", "martin", "helen", "oscar", "iris", "victor",
    "nina",
]

LAST_NAMES: List[str] = [
    "willis", "tarantino", "jackson", "thurman", "shyamalan", "travolta",
    "anderson", "bergman", "kurosawa", "miyazaki", "nolan", "bigelow",
    "cameron", "spielberg", "scott", "fincher", "villeneuve", "gerwig",
    "coppola", "kubrick", "hitchcock", "wilder", "leone", "ford", "hawks",
    "altman", "lumet", "demme", "mann", "lee", "chan", "kaur", "novak",
    "petrov", "garcia", "rossi", "muller", "dubois", "silva", "tanaka",
]

TITLE_WORDS: List[str] = [
    "sixth", "sense", "pulp", "fiction", "shadow", "river", "midnight",
    "garden", "silent", "storm", "crimson", "tide", "golden", "empire",
    "broken", "arrow", "hidden", "fortress", "lost", "horizon", "winter",
    "light", "glass", "tower", "paper", "moon", "velvet", "sky", "iron",
    "harvest", "electric", "dreams", "distant", "voices", "burning",
    "plain", "violet", "hour", "savage", "grace", "quiet", "earth",
    "hollow", "crown", "scarlet", "street", "emerald", "forest",
]

GENRES: List[str] = [
    "drama", "comedy", "thriller", "horror", "romance", "action",
    "adventure", "mystery", "crime", "fantasy", "war", "western",
    "animation", "documentary", "musical", "noir",
]

GENRE_SYNONYMS: Dict[str, List[str]] = {
    "comedy": ["comedy", "comedic", "funny", "humorous"],
    "drama": ["drama", "dramatic", "tragedy"],
    "thriller": ["thriller", "suspense", "tense"],
    "horror": ["horror", "scary", "terrifying"],
    "romance": ["romance", "romantic", "love"],
    "action": ["action", "explosive", "adrenaline"],
    "crime": ["crime", "criminal", "heist"],
    "mystery": ["mystery", "enigmatic", "puzzle"],
}

REVIEW_OPINIONS: List[str] = [
    "a masterpiece that rewards patience",
    "an uneven but fascinating picture",
    "one of the finest films of its decade",
    "a disappointing follow up to earlier work",
    "a gripping story told with confidence",
    "visually stunning and emotionally hollow",
    "an instant classic with unforgettable scenes",
    "slow to start but devastating by the end",
    "a crowd pleaser with sharp dialogue",
    "overlong yet strangely compelling",
    "carried entirely by its lead performance",
    "a bold experiment that mostly succeeds",
]

REVIEW_FILLER: List[str] = [
    "the screenplay balances wit and menace throughout",
    "the score swells at exactly the right moments",
    "cinematography turns the city into a character",
    "the pacing drags in the middle act",
    "supporting cast members steal several scenes",
    "the editing keeps the tension razor sharp",
    "production design is meticulous in every frame",
    "the ending divides audiences to this day",
    "dialogue crackles with nervous energy",
    "the premise is familiar but the execution is fresh",
]

COUNTRIES: List[str] = [
    "united states", "china", "italy", "spain", "france", "germany",
    "brazil", "india", "russia", "iran", "turkey", "mexico", "peru",
    "chile", "canada", "belgium", "netherlands", "portugal", "sweden",
    "norway", "japan", "south korea", "australia", "egypt", "nigeria",
    "south africa", "argentina", "colombia", "poland", "austria",
]

COUNTRY_VARIANTS: Dict[str, List[str]] = {
    "united states": ["united states", "us", "usa", "america"],
    "china": ["china", "prc"],
    "united kingdom": ["united kingdom", "uk", "britain"],
    "south korea": ["south korea", "korea"],
    "russia": ["russia", "russian federation"],
}

MONTHS: List[str] = [
    "january", "february", "march", "april", "may", "june", "july",
    "august", "september", "october", "november", "december",
]

COVID_METRICS: List[str] = [
    "new cases", "total cases", "new deaths", "total deaths",
    "new tests", "total tests", "hospitalized patients", "icu patients",
]

AUDIT_CONCEPTS: Dict[str, List[str]] = {
    "audit planning": ["planning", "scoping", "materiality", "timeline", "engagement"],
    "risk assessment": ["risk", "likelihood", "impact", "register", "exposure"],
    "internal controls": ["controls", "segregation", "authorization", "reconciliation"],
    "compliance": ["compliance", "regulation", "standards", "iso", "policy"],
    "financial reporting": ["financial", "statement", "disclosure", "ledger", "balance"],
    "evidence collection": ["evidence", "sampling", "documentation", "workpaper"],
    "quality review": ["quality", "review", "supervision", "signoff"],
    "fraud detection": ["fraud", "misstatement", "irregularity", "whistleblower"],
    "it systems audit": ["systems", "access", "logs", "backup", "cybersecurity"],
    "inventory audit": ["inventory", "stock", "count", "valuation", "warehouse"],
    "procurement audit": ["procurement", "vendor", "tender", "contract", "invoice"],
    "continuous improvement": ["improvement", "pdca", "plan", "check", "act"],
}

AUDIT_FILLER: List[str] = [
    "the team documented each step in the shared workpapers",
    "findings were escalated to the engagement partner",
    "management provided representations during the closing meeting",
    "the checklist follows the firm wide methodology",
    "walkthroughs confirmed the described process",
    "exceptions were logged for follow up in the next cycle",
    "the auditor traced the sample back to source documents",
    "thresholds were agreed with the client before fieldwork",
]

CLAIM_TOPICS: Dict[str, List[str]] = {
    "vaccines": ["vaccine", "dose", "immunity", "trial", "efficacy"],
    "elections": ["ballot", "vote", "turnout", "fraud", "recount"],
    "economy": ["unemployment", "inflation", "wages", "deficit", "tariff"],
    "climate": ["emissions", "temperature", "carbon", "glacier", "drought"],
    "health": ["hospital", "insurance", "medicare", "prescription", "obesity"],
    "immigration": ["border", "visa", "asylum", "deportation", "refugee"],
    "crime": ["homicide", "burglary", "sentencing", "parole", "police"],
    "education": ["tuition", "literacy", "graduation", "teacher", "curriculum"],
    "energy": ["pipeline", "solar", "wind", "nuclear", "gasoline"],
    "taxes": ["income", "corporate", "refund", "bracket", "loophole"],
}

CLAIM_VERBS: List[str] = [
    "claims", "says", "reports", "states", "argues", "announced",
    "suggested", "confirmed", "denied", "estimated",
]

GENERAL_ENGLISH: List[str] = [
    "people", "year", "time", "government", "country", "number", "percent",
    "increase", "decrease", "report", "study", "million", "billion",
    "city", "state", "world", "public", "private", "national", "federal",
    "company", "market", "price", "cost", "money", "health", "school",
    "water", "food", "energy", "power", "law", "court", "president",
    "minister", "policy", "program", "system", "service", "family",
    "children", "women", "men", "worker", "job", "industry", "growth",
    "rate", "level", "change", "problem", "issue", "question", "answer",
    "result", "effect", "cause", "reason", "way", "day", "week", "month",
    "history", "future", "past", "present", "group", "member", "leader",
    "movie", "film", "director", "actor", "actress", "story", "scene",
    "character", "plot", "audience", "critic", "review", "performance",
    "planning", "plan", "check", "act", "management", "process", "audit",
    "cases", "deaths", "tests", "patients", "hospital", "virus", "spread",
]

STS_TEMPLATES: List[str] = [
    "a {adj} {noun} is {verb} in the {place}",
    "the {noun} {verb} near the {place}",
    "{count} {noun}s are {verb} at the {place}",
    "a {noun} and a {noun2} are {verb} together",
    "the {adj} {noun} {verb} slowly",
]

STS_NOUNS: List[str] = [
    "dog", "cat", "man", "woman", "child", "horse", "bird", "car",
    "train", "boat", "guitar", "piano", "ball", "plane", "bicycle",
]

STS_VERBS: List[str] = [
    "running", "jumping", "playing", "sleeping", "eating", "walking",
    "swimming", "singing", "dancing", "riding",
]

STS_ADJECTIVES: List[str] = [
    "small", "large", "young", "old", "brown", "white", "black", "happy",
    "quiet", "fast",
]

STS_PLACES: List[str] = [
    "park", "street", "field", "beach", "kitchen", "garden", "river",
    "stadium", "forest", "station",
]
