"""Synthetic STS scenario (Table VI): sentence pairs with graded similarity.

The STS GLUE task scores sentence pairs from 0 (unrelated) to 5 (equivalent).
The paper uses it as a retrieval task: a pair is a true match when its score
is at least ``k`` (they report k=2 and k=3).  The generator emits sentence
pairs whose surface overlap is controlled by the target score, so that the
threshold semantics carry over:

* score 5 — same content words, different order / determiner;
* score 4 — one content word replaced by a near-synonym;
* score 3 — same actors, different action or place;
* score 2 — same topic noun only;
* score 0-1 — unrelated sentences.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Set

from repro.corpus.documents import TextCorpus
from repro.datasets.base import MatchingScenario, ScenarioSize
from repro.datasets import vocabularies as vocab
from repro.kb.conceptnet import build_concept_kb
from repro.utils.rng import ensure_rng

_NEAR_SYNONYMS: Dict[str, str] = {
    "small": "little",
    "large": "big",
    "running": "sprinting",
    "jumping": "leaping",
    "playing": "practicing",
    "eating": "chewing",
    "walking": "strolling",
    "dog": "puppy",
    "cat": "kitten",
    "man": "guy",
    "woman": "lady",
    "child": "kid",
}


@dataclass
class _Sentence:
    adjective: str
    noun: str
    verb: str
    place: str

    def render(self) -> str:
        return f"a {self.adjective} {self.noun} is {self.verb} in the {self.place}"


def _random_sentence(rng) -> _Sentence:
    return _Sentence(
        adjective=str(rng.choice(vocab.STS_ADJECTIVES)),
        noun=str(rng.choice(vocab.STS_NOUNS)),
        verb=str(rng.choice(vocab.STS_VERBS)),
        place=str(rng.choice(vocab.STS_PLACES)),
    )


def _variant(sentence: _Sentence, score: int, rng) -> _Sentence:
    """A second sentence whose similarity to ``sentence`` matches ``score``."""
    if score >= 5:
        return _Sentence(sentence.adjective, sentence.noun, sentence.verb, sentence.place)
    if score == 4:
        noun = _NEAR_SYNONYMS.get(sentence.noun, sentence.noun)
        verb = _NEAR_SYNONYMS.get(sentence.verb, sentence.verb)
        return _Sentence(sentence.adjective, noun, verb, sentence.place)
    if score == 3:
        return _Sentence(
            sentence.adjective,
            sentence.noun,
            str(rng.choice(vocab.STS_VERBS)),
            str(rng.choice(vocab.STS_PLACES)),
        )
    if score == 2:
        return _Sentence(
            str(rng.choice(vocab.STS_ADJECTIVES)),
            sentence.noun,
            str(rng.choice(vocab.STS_VERBS)),
            str(rng.choice(vocab.STS_PLACES)),
        )
    return _random_sentence(rng)


def generate_sts_scenario(
    size: Optional[ScenarioSize] = None,
    seed: int = 71,
    threshold: int = 2,
) -> MatchingScenario:
    """Generate the STS retrieval scenario for a match threshold ``k``.

    Pairs with gold similarity >= ``threshold`` are true matches; pairs below
    it only contribute their right-hand sentence as a distractor candidate.
    """
    if not 0 <= threshold <= 5:
        raise ValueError("threshold must be between 0 and 5")
    size = size or ScenarioSize.small()
    rng = ensure_rng(seed)

    first = TextCorpus(name="sts_left")
    second = TextCorpus(name="sts_right")
    gold: Dict[str, Set[str]] = {}
    pair_scores: Dict[str, int] = {}

    n_pairs = size.n_queries
    for i in range(n_pairs):
        score = int(rng.integers(0, 6))
        left = _random_sentence(rng)
        right = _variant(left, score, rng)
        left_id = f"l{i:05d}"
        right_id = f"r{i:05d}"
        first.add_text(left_id, left.render())
        second.add_text(right_id, right.render())
        pair_scores[left_id] = score
        if score >= threshold:
            gold[left_id] = {right_id}

    # Only annotated queries take part in the evaluation (like the paper,
    # which filters pairs by the threshold); unannotated left sentences stay
    # in the corpus as additional graph context.
    synonym_clusters = {f"syn::{a}": [a, b] for a, b in _NEAR_SYNONYMS.items()}
    kb = build_concept_kb(
        {**{f"syn::{a}": [a, b] for a, b in _NEAR_SYNONYMS.items()},
         "animals": ["dog", "cat", "horse", "bird", "puppy", "kitten"],
         "people": ["man", "woman", "child", "guy", "lady", "kid"]},
        noise_terms=vocab.GENERAL_ENGLISH,
        noise_relations=20,
        seed=rng,
        name="conceptnet-sts",
    )

    scenario = MatchingScenario(
        name=f"sts_k{threshold}",
        task="text-to-text",
        first=first,
        second=second,
        gold=gold,
        kb=kb,
        synonym_clusters=synonym_clusters,
        general_vocabulary=(
            list(vocab.GENERAL_ENGLISH)
            + vocab.STS_NOUNS
            + vocab.STS_VERBS
            + vocab.STS_ADJECTIVES
            + vocab.STS_PLACES
            + list(_NEAR_SYNONYMS.values())
        ),
        extras={"threshold": threshold, "pair_scores": pair_scores},
    )
    scenario.validate()
    return scenario
