"""Synthetic CoronaCheck scenario (Table II): COVID claims matched to tuples.

The original scenario matches COVID-19 claims against a relation of daily
statistics per country.  The synthetic version builds a monthly statistics
table (country, month, metric values) and derives two claim corpora:

* ``Gen`` — clean sentences generated from the rows ("New cases in Italy in
  March were 1250");
* ``Usr`` — user-style sentences with typos in country names, rounded
  numbers, comparative phrasing ("cases in US higher than China"), which is
  what makes the Usr split harder in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from repro.corpus.documents import TextCorpus
from repro.corpus.table import Column, Table
from repro.datasets.base import MatchingScenario, ScenarioSize
from repro.datasets import vocabularies as vocab
from repro.kb.conceptnet import build_concept_kb
from repro.utils.rng import ensure_rng

CORONA_COLUMNS: List[Column] = [
    Column("country"),
    Column("month"),
    Column("new_cases", dtype="numeric"),
    Column("total_cases", dtype="numeric"),
    Column("new_deaths", dtype="numeric"),
    Column("total_deaths", dtype="numeric"),
    Column("new_tests", dtype="numeric"),
]

_METRIC_TO_COLUMN = {
    "new cases": "new_cases",
    "total cases": "total_cases",
    "new deaths": "new_deaths",
    "total deaths": "total_deaths",
    "new tests": "new_tests",
}


@dataclass
class _StatRow:
    row_id: str
    country: str
    month: str
    values: Dict[str, int]


def _typo(word: str, rng) -> str:
    """Introduce a single-character typo (drop or swap) into ``word``."""
    if len(word) < 4 or rng.random() < 0.5:
        return word
    pos = int(rng.integers(1, len(word) - 1))
    if rng.random() < 0.5:
        return word[:pos] + word[pos + 1 :]
    chars = list(word)
    chars[pos], chars[pos - 1] = chars[pos - 1], chars[pos]
    return "".join(chars)


def _country_mention(country: str, rng, user_style: bool) -> str:
    variants = vocab.COUNTRY_VARIANTS.get(country)
    if variants and rng.random() < 0.5:
        country = str(rng.choice(variants))
    if user_style and rng.random() < 0.35:
        country = " ".join(_typo(w, rng) for w in country.split())
    return country


def _sample_rows(size: ScenarioSize, rng) -> List[_StatRow]:
    rows: List[_StatRow] = []
    n_countries = min(len(vocab.COUNTRIES), max(5, size.n_entities // 4))
    countries = [str(c) for c in rng.choice(vocab.COUNTRIES, size=n_countries, replace=False)]
    n_months = max(2, min(12, size.n_entities // n_countries + 1))
    months = vocab.MONTHS[:n_months]
    index = 0
    for country in countries:
        total_cases = int(rng.integers(100, 2000))
        total_deaths = int(rng.integers(5, 100))
        for month in months:
            new_cases = int(rng.integers(50, 40000))
            new_deaths = int(rng.integers(1, 900))
            new_tests = int(rng.integers(1000, 200000))
            total_cases += new_cases
            total_deaths += new_deaths
            rows.append(
                _StatRow(
                    row_id=f"c{index:05d}",
                    country=country,
                    month=month,
                    values={
                        "new_cases": new_cases,
                        "total_cases": total_cases,
                        "new_deaths": new_deaths,
                        "total_deaths": total_deaths,
                        "new_tests": new_tests,
                    },
                )
            )
            index += 1
    return rows


def _stats_table(rows: List[_StatRow]) -> Table:
    table = Table("coronacheck", CORONA_COLUMNS)
    for row in rows:
        table.add_record(row.row_id, country=row.country, month=row.month, **row.values)
    return table


def _generated_claim(row: _StatRow, metric: str, rng) -> str:
    value = row.values[_METRIC_TO_COLUMN[metric]]
    templates = [
        f"The number of {metric} in {row.country} in {row.month} was {value}.",
        f"{row.country} reported {value} {metric} during {row.month}.",
        f"In {row.month}, {metric} in {row.country} reached {value}.",
    ]
    return str(rng.choice(templates))


def _user_claim(row: _StatRow, other: Optional[_StatRow], metric: str, rng) -> str:
    value = row.values[_METRIC_TO_COLUMN[metric]]
    country = _country_mention(row.country, rng, user_style=True)
    rounded = int(round(value, -2)) if value > 200 else value
    if other is not None and rng.random() < 0.4:
        other_country = _country_mention(other.country, rng, user_style=True)
        return (
            f"number of {metric} in {country} is higher than {other_country} this {row.month}"
        )
    templates = [
        f"did {country} really have about {rounded} {metric} in {row.month}",
        f"{country} {metric} around {rounded} last {row.month}",
        f"heard that {metric} in {country} hit {rounded} in {row.month}",
    ]
    return str(rng.choice(templates))


def generate_corona_scenario(
    size: Optional[ScenarioSize] = None,
    seed: int = 29,
    user_style: bool = False,
    claims_per_row: float = 0.8,
) -> MatchingScenario:
    """Generate the CoronaCheck text-to-data scenario.

    ``user_style=False`` produces the Gen split, ``True`` the harder Usr
    split (typos, rounding, comparative claims matching two rows).
    """
    size = size or ScenarioSize.small()
    rng = ensure_rng(seed)
    rows = _sample_rows(size, rng)
    table = _stats_table(rows)

    claims = TextCorpus(name="corona_usr" if user_style else "corona_gen")
    gold: Dict[str, Set[str]] = {}
    n_claims = max(5, int(claims_per_row * len(rows))) if not user_style else max(
        5, int(0.25 * len(rows))
    )
    metrics = list(_METRIC_TO_COLUMN)
    for i in range(n_claims):
        row = rows[int(rng.integers(0, len(rows)))]
        metric = str(rng.choice(metrics))
        doc_id = f"q{i:05d}"
        if user_style:
            other = rows[int(rng.integers(0, len(rows)))]
            other = other if other.row_id != row.row_id else None
            text = _user_claim(row, other, metric, rng)
            matches = {row.row_id}
            if other is not None and "higher than" in text:
                matches.add(other.row_id)
        else:
            text = _generated_claim(row, metric, rng)
            matches = {row.row_id}
        claims.add_text(doc_id, text)
        gold[doc_id] = matches

    # ConceptNet-like resource: metric phrasing clusters + month/season links.
    concept_clusters = {
        "cases": ["cases", "infections", "positives"],
        "deaths": ["deaths", "fatalities", "casualties"],
        "tests": ["tests", "swabs", "screenings"],
        "pandemic": ["covid", "coronavirus", "pandemic", "virus"],
    }
    kb = build_concept_kb(
        concept_clusters,
        noise_terms=vocab.GENERAL_ENGLISH,
        noise_relations=30,
        seed=rng,
        name="conceptnet-corona",
    )

    synonym_clusters = {f"country::{c}": v for c, v in vocab.COUNTRY_VARIANTS.items()}
    synonym_clusters.update({f"metric::{k}": v for k, v in concept_clusters.items()})

    scenario = MatchingScenario(
        name="corona_usr" if user_style else "corona_gen",
        task="text-to-data",
        first=claims,
        second=table,
        gold=gold,
        kb=kb,
        synonym_clusters=synonym_clusters,
        general_vocabulary=list(vocab.GENERAL_ENGLISH) + vocab.MONTHS,
        extras={"rows": len(rows), "user_style": user_style},
    )
    scenario.validate()
    return scenario
