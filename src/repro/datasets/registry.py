"""Registry of scenario generators, keyed by the names used in the paper."""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.datasets.audit import generate_audit_scenario
from repro.datasets.base import MatchingScenario, ScenarioSize
from repro.datasets.claims import generate_politifact_scenario, generate_snopes_scenario
from repro.datasets.corona import generate_corona_scenario
from repro.datasets.imdb import generate_imdb_scenario
from repro.datasets.sts import generate_sts_scenario

SCENARIO_GENERATORS: Dict[str, Callable[..., MatchingScenario]] = {
    "imdb_wt": lambda size=None, seed=13: generate_imdb_scenario(size=size, seed=seed, with_title=True),
    "imdb_nt": lambda size=None, seed=13: generate_imdb_scenario(size=size, seed=seed, with_title=False),
    "corona_gen": lambda size=None, seed=29: generate_corona_scenario(size=size, seed=seed, user_style=False),
    "corona_usr": lambda size=None, seed=29: generate_corona_scenario(size=size, seed=seed, user_style=True),
    "audit": lambda size=None, seed=47: generate_audit_scenario(size=size, seed=seed),
    "snopes": lambda size=None, seed=59: generate_snopes_scenario(size=size, seed=seed),
    "politifact": lambda size=None, seed=61: generate_politifact_scenario(size=size, seed=seed),
    "sts_k2": lambda size=None, seed=71: generate_sts_scenario(size=size, seed=seed, threshold=2),
    "sts_k3": lambda size=None, seed=71: generate_sts_scenario(size=size, seed=seed, threshold=3),
}


def generate_scenario(
    name: str, size: Optional[ScenarioSize] = None, seed: Optional[int] = None
) -> MatchingScenario:
    """Generate a scenario by name (see :data:`SCENARIO_GENERATORS`)."""
    if name not in SCENARIO_GENERATORS:
        raise KeyError(f"unknown scenario {name!r}; available: {sorted(SCENARIO_GENERATORS)}")
    generator = SCENARIO_GENERATORS[name]
    if seed is None:
        return generator(size=size)
    return generator(size=size, seed=seed)
