"""Synthetic Snopes and Politifact scenarios (Tables IV and V).

Both scenarios are text-to-text: given an input claim, rank the verified
claims (facts) that check it.  The generator builds a pool of verified
claims about political/societal topics, then derives query claims as noisy
paraphrases of some of them (synonym substitutions, rounding of numbers,
reordering), plus distractor verified claims that match nothing.

Snopes claims are longer and more descriptive than Politifact claims, as in
the paper (43 vs 18 tokens on average) — controlled by ``query_style``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from repro.corpus.documents import TextCorpus
from repro.datasets.base import MatchingScenario, ScenarioSize
from repro.datasets import vocabularies as vocab
from repro.kb.conceptnet import build_concept_kb
from repro.utils.rng import ensure_rng

_SYNONYMS: Dict[str, List[str]] = {
    "increase": ["increase", "rise", "growth", "surge"],
    "decrease": ["decrease", "drop", "decline", "fall"],
    "claims": ["claims", "says", "states", "argues"],
    "million": ["million", "millions"],
    "percent": ["percent", "percentage points", "pct"],
    "report": ["report", "study", "analysis"],
    "government": ["government", "administration", "state"],
    "country": ["country", "nation"],
}

_ENTITIES = [
    "the governor", "the senator", "the mayor", "the agency", "the ministry",
    "the committee", "the president", "the union", "the institute", "the council",
]


@dataclass
class _Fact:
    fact_id: str
    topic: str
    entity: str
    keyword: str
    direction: str
    amount: int
    year: int

    def render(self, rng, verbose: bool) -> str:
        verb = str(rng.choice(vocab.CLAIM_VERBS))
        base = (
            f"{self.entity} {verb} that {self.keyword} {self.direction}d by "
            f"{self.amount} percent in {self.year}"
        )
        if verbose:
            extra = (
                f" according to a {rng.choice(_SYNONYMS['report'])} on {self.topic} published that year,"
                f" a figure disputed by independent researchers"
            )
            return base + extra + "."
        return base + "."


def _substitute(text: str, rng) -> str:
    tokens = text.split()
    out: List[str] = []
    for token in tokens:
        stripped = token.strip(".,").lower()
        options = _SYNONYMS.get(stripped)
        if options and rng.random() < 0.6:
            out.append(str(rng.choice(options)))
        else:
            out.append(token)
    return " ".join(out)


def _paraphrase(fact: _Fact, rng, verbose: bool) -> str:
    amount = fact.amount
    if rng.random() < 0.4:
        amount = int(round(amount, -1)) or amount
    templates = [
        f"is it true that {fact.keyword} {fact.direction}d {amount} percent in {fact.year}",
        f"{fact.entity} said {fact.keyword} {fact.direction}d by about {amount} percent",
        f"social posts claim a {amount} percent {fact.direction} in {fact.keyword} during {fact.year}",
    ]
    text = str(rng.choice(templates))
    if verbose:
        text += f", supposedly linked to {fact.topic} policy changes under debate"
    return _substitute(text, rng) + ("?" if text.startswith("is it") else ".")


def _generate_facts(n_facts: int, rng) -> List[_Fact]:
    facts: List[_Fact] = []
    topics = list(vocab.CLAIM_TOPICS)
    for i in range(n_facts):
        topic = str(rng.choice(topics))
        keyword = str(rng.choice(vocab.CLAIM_TOPICS[topic]))
        facts.append(
            _Fact(
                fact_id=f"f{i:05d}",
                topic=topic,
                entity=str(rng.choice(_ENTITIES)),
                keyword=keyword,
                direction=str(rng.choice(["increase", "decrease"])),
                amount=int(rng.integers(2, 90)),
                year=int(rng.integers(2010, 2022)),
            )
        )
    return facts


def _generate_claim_scenario(
    name: str,
    size: ScenarioSize,
    seed: int,
    verbose_queries: bool,
) -> MatchingScenario:
    rng = ensure_rng(seed)
    n_facts = size.n_entities + size.n_distractors
    facts = _generate_facts(n_facts, rng)

    verified = TextCorpus(name=f"{name}_verified")
    for fact in facts:
        verified.add_text(fact.fact_id, fact.render(rng, verbose=True))

    queries = TextCorpus(name=f"{name}_claims")
    gold: Dict[str, Set[str]] = {}
    matchable = facts[: size.n_entities]
    for i in range(size.n_queries):
        fact = matchable[int(rng.integers(0, len(matchable)))]
        doc_id = f"q{i:05d}"
        queries.add_text(doc_id, _paraphrase(fact, rng, verbose=verbose_queries))
        gold[doc_id] = {fact.fact_id}

    concept_clusters = {key: list(values) for key, values in _SYNONYMS.items()}
    concept_clusters.update({t: list(words) for t, words in vocab.CLAIM_TOPICS.items()})
    kb = build_concept_kb(
        concept_clusters,
        noise_terms=vocab.GENERAL_ENGLISH,
        noise_relations=40,
        seed=rng,
        name=f"conceptnet-{name}",
    )

    scenario = MatchingScenario(
        name=name,
        task="text-to-text",
        first=queries,
        second=verified,
        gold=gold,
        kb=kb,
        synonym_clusters=concept_clusters,
        general_vocabulary=list(vocab.GENERAL_ENGLISH)
        + [w for words in vocab.CLAIM_TOPICS.values() for w in words]
        + [w for words in _SYNONYMS.values() for w in words],
        extras={"verified_claims": len(facts)},
    )
    scenario.validate()
    return scenario


def generate_snopes_scenario(size: Optional[ScenarioSize] = None, seed: int = 59) -> MatchingScenario:
    """Snopes-style scenario: longer, more descriptive query claims."""
    return _generate_claim_scenario("snopes", size or ScenarioSize.small(), seed, verbose_queries=True)


def generate_politifact_scenario(size: Optional[ScenarioSize] = None, seed: int = 61) -> MatchingScenario:
    """Politifact-style scenario: short political claims."""
    return _generate_claim_scenario("politifact", size or ScenarioSize.small(), seed, verbose_queries=False)
