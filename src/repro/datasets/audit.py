"""Synthetic audit scenario (Table III): documents matched to taxonomy nodes.

The enterprise scenario of the paper matches 1622 audit documents to a
taxonomy of 747 auditing concepts whose paths are 2-5 nodes long (4 on
average); 40% of the documents map to one concept, 10% to two, the rest to
three or more.  The generator reproduces that structure at reduced scale:

* a taxonomy rooted at "internal audit" with domain areas and sub-concepts
  built from :data:`repro.datasets.vocabularies.AUDIT_CONCEPTS`;
* documents of 1-6 sentences mentioning the vocabulary of their gold
  concepts (with inflected forms, so stemming matters) plus audit filler;
* domain-specific terms ("pdca", "workpaper") that a general pre-trained
  resource does not model — the property that makes S-BE weak here.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.corpus.documents import TextCorpus
from repro.corpus.taxonomy import Taxonomy
from repro.datasets.base import MatchingScenario, ScenarioSize
from repro.datasets import vocabularies as vocab
from repro.kb.conceptnet import build_concept_kb
from repro.utils.rng import ensure_rng

_INFLECTIONS = {
    "planning": ["planning", "plan", "planned", "plans"],
    "risk": ["risk", "risks", "risky"],
    "controls": ["controls", "control", "controlling"],
    "compliance": ["compliance", "compliant", "comply"],
    "evidence": ["evidence", "evidences"],
    "sampling": ["sampling", "sample", "samples"],
    "review": ["review", "reviews", "reviewed", "reviewing"],
    "fraud": ["fraud", "fraudulent"],
    "inventory": ["inventory", "inventories"],
    "improvement": ["improvement", "improve", "improving", "improvements"],
    "documentation": ["documentation", "document", "documented"],
    "valuation": ["valuation", "value", "valued"],
}


def _mention(word: str, rng) -> str:
    forms = _INFLECTIONS.get(word)
    if forms:
        return str(rng.choice(forms))
    return word


def build_audit_taxonomy(leaf_per_area: int = 3) -> Taxonomy:
    """Build the audit taxonomy: root → area → concept → sub-concept."""
    taxonomy = Taxonomy(name="audit_taxonomy")
    taxonomy.add_concept("root", "internal audit")
    taxonomy.add_concept("governance", "governance and methodology", parent_id="root")
    taxonomy.add_concept("operations", "operational audit areas", parent_id="root")
    area_parents = ["governance", "operations"]
    for i, (area, words) in enumerate(vocab.AUDIT_CONCEPTS.items()):
        area_id = f"area{i:02d}"
        parent = area_parents[i % len(area_parents)]
        taxonomy.add_concept(area_id, area, parent_id=parent)
        for j, word in enumerate(words[:leaf_per_area]):
            leaf_id = f"{area_id}_c{j}"
            taxonomy.add_concept(leaf_id, f"{word} {area.split()[-1]}", parent_id=area_id)
    taxonomy.validate()
    return taxonomy


def _document_text(concept_words: List[str], rng) -> str:
    sentences: List[str] = []
    mentions = [_mention(w, rng) for w in concept_words]
    sentences.append(
        f"The engagement focused on {mentions[0]} and related {mentions[-1]} procedures."
    )
    if len(mentions) > 2:
        sentences.append(
            f"Particular attention was paid to {mentions[1]} across the reviewed processes."
        )
    n_filler = int(rng.integers(1, 4))
    for filler in rng.choice(vocab.AUDIT_FILLER, size=n_filler, replace=False):
        sentences.append(str(filler).capitalize() + ".")
    if rng.random() < 0.3:
        sentences.append("The pdca cycle guided the remediation follow up.")
    return " ".join(sentences)


def generate_audit_scenario(
    size: Optional[ScenarioSize] = None,
    seed: int = 47,
    leaf_per_area: int = 3,
) -> MatchingScenario:
    """Generate the text-to-structured-text audit scenario."""
    size = size or ScenarioSize.small()
    rng = ensure_rng(seed)
    taxonomy = build_audit_taxonomy(leaf_per_area=leaf_per_area)

    # Concepts that documents can be annotated with (exclude the two most
    # general levels, as the Node score does).
    annotatable = [
        node.node_id
        for node in taxonomy
        if taxonomy.depth(node.node_id) >= 3
    ]

    documents = TextCorpus(name="audit_documents")
    gold: Dict[str, Set[str]] = {}
    n_documents = size.n_queries
    for i in range(n_documents):
        doc_id = f"d{i:05d}"
        # 40% one concept, 10% two, the rest three or more (paper stats).
        draw = rng.random()
        if draw < 0.4:
            n_concepts = 1
        elif draw < 0.5:
            n_concepts = 2
        else:
            n_concepts = int(rng.integers(3, 6))
        n_concepts = min(n_concepts, len(annotatable))
        concept_ids = [
            str(c) for c in rng.choice(annotatable, size=n_concepts, replace=False)
        ]
        words: List[str] = []
        for concept_id in concept_ids:
            words.extend(taxonomy[concept_id].label.split())
            parent = taxonomy.parent(concept_id)
            if parent is not None and rng.random() < 0.5:
                words.append(parent.label.split()[0])
        documents.add_text(doc_id, _document_text(words, rng))
        gold[doc_id] = set(concept_ids)

    # ConceptNet-like resource relating audit vocabulary clusters.
    kb = build_concept_kb(
        {area: words for area, words in vocab.AUDIT_CONCEPTS.items()},
        noise_terms=vocab.GENERAL_ENGLISH,
        noise_relations=40,
        seed=rng,
        name="conceptnet-audit",
    )

    scenario = MatchingScenario(
        name="audit",
        task="text-to-structured-text",
        first=documents,
        second=taxonomy,
        gold=gold,
        kb=kb,
        synonym_clusters={k: v for k, v in _INFLECTIONS.items()},
        general_vocabulary=list(vocab.GENERAL_ENGLISH),
        extras={"taxonomy_nodes": len(taxonomy)},
    )
    scenario.validate()
    return scenario


def gold_paths(scenario: MatchingScenario) -> Dict[str, List[List[str]]]:
    """Gold root→node label paths per document (input of the Table III metrics)."""
    taxonomy = scenario.second
    if not isinstance(taxonomy, Taxonomy):
        raise TypeError("gold_paths expects a taxonomy scenario")
    result: Dict[str, List[List[str]]] = {}
    for doc_id, concepts in scenario.gold.items():
        result[doc_id] = [taxonomy.label_path(c) for c in sorted(concepts)]
    return result


def predicted_paths(scenario: MatchingScenario, rankings, k: int) -> Dict[str, List[List[str]]]:
    """Convert concept rankings into label paths (top-k per document)."""
    taxonomy = scenario.second
    if not isinstance(taxonomy, Taxonomy):
        raise TypeError("predicted_paths expects a taxonomy scenario")
    result: Dict[str, List[List[str]]] = {}
    for ranking in rankings:
        paths = []
        for concept_id in ranking.ids(k):
            if concept_id in taxonomy:
                paths.append(taxonomy.label_path(concept_id))
        result[ranking.query_id] = paths
    return result
