"""Synthetic IMDb scenario (Table I): movie reviews matched to movie tuples.

The generator builds a "world" of movies with directors, casts, genres and
numeric attributes, renders them both as a 13-attribute relation and as free
text reviews (two per movie, as in the paper), and emits the gold
review→tuple matches.  Reviews reference the movie through noisy mentions —
partial titles, abbreviated actor names ("b. willis"), genre synonyms — so
that exact-overlap methods are penalised the same way the paper describes.

Two table variants are produced: ``WT`` (with the title attribute) and the
harder ``NT`` (title dropped), matching the paper's setup.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.corpus.documents import TextCorpus
from repro.corpus.table import Column, Table
from repro.datasets.base import MatchingScenario, ScenarioSize
from repro.datasets import vocabularies as vocab
from repro.kb.dbpedia import build_entity_kb
from repro.utils.rng import ensure_rng

IMDB_COLUMNS: List[Column] = [
    Column("title"),
    Column("director"),
    Column("lead_actor"),
    Column("supporting_actor"),
    Column("genre"),
    Column("year", dtype="numeric"),
    Column("rating", dtype="numeric"),
    Column("runtime", dtype="numeric"),
    Column("country"),
    Column("language"),
    Column("certificate"),
    Column("gross_millions", dtype="numeric"),
    Column("keywords"),
]

_LANGUAGES = ["english", "french", "italian", "japanese", "spanish", "korean"]
_CERTIFICATES = ["pg", "pg 13", "r", "g"]
_KEYWORD_POOL = [
    "betrayal", "revenge", "heist", "ghost", "memory", "island", "trial",
    "escape", "conspiracy", "wedding", "journey", "sacrifice", "rivalry",
]


@dataclass
class _Movie:
    """Internal world-model record used to derive both corpora and the KB."""

    movie_id: str
    title_words: List[str]
    director_first: str
    director_last: str
    lead_first: str
    lead_last: str
    support_first: str
    support_last: str
    genre: str
    year: int
    rating: float
    runtime: int
    country: str
    language: str
    certificate: str
    gross: int
    keywords: List[str]

    @property
    def title(self) -> str:
        return " ".join(w.title() for w in self.title_words)

    @property
    def director(self) -> str:
        return f"{self.director_first.title()} {self.director_last.title()}"

    @property
    def lead(self) -> str:
        return f"{self.lead_first.title()} {self.lead_last.title()}"

    @property
    def support(self) -> str:
        return f"{self.support_first.title()} {self.support_last.title()}"


def _sample_movies(size: ScenarioSize, rng) -> List[_Movie]:
    movies: List[_Movie] = []
    used_titles: Set[Tuple[str, ...]] = set()
    for i in range(size.n_entities):
        while True:
            n_words = int(rng.integers(1, 4))
            words = tuple(rng.choice(vocab.TITLE_WORDS, size=n_words, replace=False).tolist())
            if words not in used_titles:
                used_titles.add(words)
                break
        movies.append(
            _Movie(
                movie_id=f"m{i:04d}",
                title_words=list(words),
                director_first=str(rng.choice(vocab.FIRST_NAMES)),
                director_last=str(rng.choice(vocab.LAST_NAMES)),
                lead_first=str(rng.choice(vocab.FIRST_NAMES)),
                lead_last=str(rng.choice(vocab.LAST_NAMES)),
                support_first=str(rng.choice(vocab.FIRST_NAMES)),
                support_last=str(rng.choice(vocab.LAST_NAMES)),
                genre=str(rng.choice(vocab.GENRES)),
                year=int(rng.integers(1960, 2021)),
                rating=round(float(rng.uniform(4.0, 9.5)), 1),
                runtime=int(rng.integers(80, 200)),
                country=str(rng.choice(vocab.COUNTRIES)),
                language=str(rng.choice(_LANGUAGES)),
                certificate=str(rng.choice(_CERTIFICATES)),
                gross=int(rng.integers(1, 900)),
                keywords=[str(k) for k in rng.choice(_KEYWORD_POOL, size=2, replace=False)],
            )
        )
    return movies


def _movies_table(movies: List[_Movie], name: str = "imdb") -> Table:
    table = Table(name, IMDB_COLUMNS)
    for movie in movies:
        table.add_record(
            movie.movie_id,
            title=movie.title,
            director=movie.director,
            lead_actor=movie.lead,
            supporting_actor=movie.support,
            genre=movie.genre,
            year=movie.year,
            rating=movie.rating,
            runtime=movie.runtime,
            country=movie.country,
            language=movie.language,
            certificate=movie.certificate,
            gross_millions=movie.gross,
            keywords=", ".join(movie.keywords),
        )
    return table


def _actor_mention(first: str, last: str, rng) -> str:
    """A noisy mention of a person: full name, abbreviation, or last name."""
    style = int(rng.integers(0, 3))
    if style == 0:
        return f"{first.title()} {last.title()}"
    if style == 1:
        return f"{first[0].upper()}. {last.title()}"
    return last.title()


def _genre_mention(genre: str, rng) -> str:
    synonyms = vocab.GENRE_SYNONYMS.get(genre)
    if synonyms:
        return str(rng.choice(synonyms))
    return genre


def _title_mention(movie: _Movie, rng) -> str:
    """The full title, or a partial title for multi-word titles."""
    if len(movie.title_words) > 1 and rng.random() < 0.3:
        keep = int(rng.integers(1, len(movie.title_words)))
        return " ".join(w.title() for w in movie.title_words[:keep])
    return movie.title

def _review_text(movie: _Movie, rng) -> str:
    """One synthetic review: 4-8 sentences referencing the movie noisily."""
    sentences: List[str] = []
    sentences.append(
        f"{_title_mention(movie, rng)} is {rng.choice(vocab.REVIEW_OPINIONS)}."
    )
    sentences.append(
        f"Director {_actor_mention(movie.director_first, movie.director_last, rng)} "
        f"delivers a {_genre_mention(movie.genre, rng)} that lingers."
    )
    sentences.append(
        f"{_actor_mention(movie.lead_first, movie.lead_last, rng)} gives a career best turn, "
        f"while {_actor_mention(movie.support_first, movie.support_last, rng)} grounds every scene."
    )
    if rng.random() < 0.6:
        sentences.append(
            f"Set in {movie.country.title()}, the story of {rng.choice(movie.keywords)} feels urgent."
        )
    if rng.random() < 0.5:
        sentences.append(f"Back in {movie.year} nothing else looked like this.")
    n_filler = int(rng.integers(1, 4))
    for sentence in rng.choice(vocab.REVIEW_FILLER, size=n_filler, replace=False):
        sentences.append(str(sentence).capitalize() + ".")
    return " ".join(sentences)


def _build_kb(movies: List[_Movie], rng, noise_per_entity: int = 12):
    """DBpedia-like KB: true filmography relations plus noisy fan-out."""
    relations: List[Tuple[str, str, str]] = []
    popular: List[str] = []
    for movie in movies:
        title = " ".join(movie.title_words)
        director = f"{movie.director_first} {movie.director_last}"
        lead = f"{movie.lead_first} {movie.lead_last}"
        support = f"{movie.support_first} {movie.support_last}"
        relations.append((director, "directorOf", title))
        relations.append((lead, "starringOf", title))
        relations.append((support, "starringOf", title))
        relations.append((movie.director_last, "surnameOf", director))
        relations.append((movie.lead_last, "surnameOf", lead))
        relations.append((movie.support_last, "surnameOf", support))
        relations.append((director, "knownFor", movie.genre))
        popular.extend([director, lead])
    return build_entity_kb(
        entity_relations=relations,
        popular_entities=popular,
        noise_per_entity=noise_per_entity,
        noise_vocabulary=vocab.GENERAL_ENGLISH,
        seed=rng,
        name="dbpedia-imdb",
    )


def _synonym_clusters(movies: List[_Movie]) -> Dict[str, List[str]]:
    """Name-variant clusters for the pre-trained merge resource."""
    clusters: Dict[str, List[str]] = {}
    people = set()
    for movie in movies:
        for first, last in (
            (movie.director_first, movie.director_last),
            (movie.lead_first, movie.lead_last),
            (movie.support_first, movie.support_last),
        ):
            people.add((first, last))
    for first, last in sorted(people):
        clusters[f"person::{first}-{last}"] = [
            f"{first} {last}",
            f"{first[0]} {last}",
            last,
        ]
    for genre, synonyms in vocab.GENRE_SYNONYMS.items():
        clusters[f"genre::{genre}"] = list(synonyms)
    return clusters


def generate_imdb_scenario(
    size: Optional[ScenarioSize] = None,
    seed: int = 13,
    with_title: bool = True,
    reviews_per_movie: int = 2,
    kb_noise_per_entity: int = 12,
) -> MatchingScenario:
    """Generate the IMDb text-to-data scenario.

    Parameters
    ----------
    size:
        Scenario size (number of movies); defaults to ``ScenarioSize.small``.
    seed:
        RNG seed — the same seed always produces the same world.
    with_title:
        True for the WT variant; False drops the title attribute (NT).
    reviews_per_movie:
        Reviews generated per movie (the paper has two).
    kb_noise_per_entity:
        Irrelevant DBpedia-style facts per popular entity.
    """
    size = size or ScenarioSize.small()
    rng = ensure_rng(seed)
    movies = _sample_movies(size, rng)
    table = _movies_table(movies, name="imdb_wt" if with_title else "imdb_nt")
    if not with_title:
        table = table.drop_columns(["title"], name="imdb_nt")

    reviews = TextCorpus(name="imdb_reviews")
    gold: Dict[str, Set[str]] = {}
    review_index = 0
    for movie in movies:
        for _ in range(reviews_per_movie):
            doc_id = f"r{review_index:05d}"
            review_index += 1
            reviews.add_text(doc_id, _review_text(movie, rng), movie_id=movie.movie_id)
            gold[doc_id] = {movie.movie_id}

    kb = _build_kb(movies, rng, noise_per_entity=kb_noise_per_entity)
    scenario = MatchingScenario(
        name="imdb_wt" if with_title else "imdb_nt",
        task="text-to-data",
        first=reviews,
        second=table,
        gold=gold,
        kb=kb,
        synonym_clusters=_synonym_clusters(movies),
        general_vocabulary=list(vocab.GENERAL_ENGLISH) + list(vocab.GENRES),
        extras={"movies": len(movies), "with_title": with_title},
    )
    scenario.validate()
    return scenario
