"""Synthetic scenario generators for the paper's six evaluation datasets.

The original corpora (IMDb reviews, CoronaCheck, the KPMG audit corpus,
Snopes, Politifact, STS) are not available offline; each generator builds a
scaled-down synthetic equivalent with the same structure — corpus types,
schemas, document-length distributions, vocabulary overlap and ambiguity —
and gold matches known by construction (see DESIGN.md, substitution table).
"""

from repro.datasets.base import MatchingScenario, ScenarioSize
from repro.datasets.imdb import generate_imdb_scenario
from repro.datasets.corona import generate_corona_scenario
from repro.datasets.audit import generate_audit_scenario
from repro.datasets.claims import generate_politifact_scenario, generate_snopes_scenario
from repro.datasets.sts import generate_sts_scenario
from repro.datasets.registry import SCENARIO_GENERATORS, generate_scenario

__all__ = [
    "MatchingScenario",
    "ScenarioSize",
    "generate_imdb_scenario",
    "generate_corona_scenario",
    "generate_audit_scenario",
    "generate_snopes_scenario",
    "generate_politifact_scenario",
    "generate_sts_scenario",
    "SCENARIO_GENERATORS",
    "generate_scenario",
]
