"""Scenario container shared by all synthetic datasets."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Union

from repro.corpus.documents import TextCorpus
from repro.corpus.serialization import serialize_row
from repro.corpus.table import Table
from repro.corpus.taxonomy import Taxonomy
from repro.kb.knowledge_base import InMemoryKnowledgeBase

Corpus = Union[Table, TextCorpus, Taxonomy]


@dataclass
class ScenarioSize:
    """Size knobs shared by the generators.

    ``tiny`` is meant for unit tests, ``small`` for benchmarks on a laptop,
    ``medium`` approaches (scaled-down) paper sizes.
    """

    n_entities: int = 60
    n_queries: int = 80
    n_distractors: int = 40

    @classmethod
    def tiny(cls) -> "ScenarioSize":
        return cls(n_entities=16, n_queries=20, n_distractors=8)

    @classmethod
    def small(cls) -> "ScenarioSize":
        return cls(n_entities=60, n_queries=80, n_distractors=40)

    @classmethod
    def medium(cls) -> "ScenarioSize":
        return cls(n_entities=150, n_queries=220, n_distractors=100)


@dataclass
class MatchingScenario:
    """One matching task: two corpora, gold matches, and optional resources.

    Attributes
    ----------
    name / task:
        Scenario identifier and task type ("text-to-data",
        "text-to-structured-text", "text-to-text").
    first:
        The query corpus (text documents in all paper scenarios).
    second:
        The candidate corpus (a table, a taxonomy, or another text corpus).
    gold:
        Query document id → set of matching candidate ids.
    kb:
        External knowledge base for graph expansion (DBpedia/ConceptNet
        stand-in consistent with the scenario's world model).
    synonym_clusters:
        Term clusters used to build the pre-trained resource for node
        merging and the S-BE encoder.
    general_vocabulary:
        Tokens that the pre-trained resources model well.
    """

    name: str
    task: str
    first: TextCorpus
    second: Corpus
    gold: Dict[str, Set[str]]
    kb: Optional[InMemoryKnowledgeBase] = None
    synonym_clusters: Dict[str, List[str]] = field(default_factory=dict)
    general_vocabulary: List[str] = field(default_factory=list)
    extras: Dict[str, object] = field(default_factory=dict)

    # ------------------------------------------------------------------
    def query_texts(self) -> Dict[str, str]:
        """Query document id → raw text (for the text-based baselines)."""
        return {doc.doc_id: doc.text for doc in self.first}

    def candidate_texts(self) -> Dict[str, str]:
        """Candidate id → text rendering (serialized rows for tables)."""
        if isinstance(self.second, Table):
            return {row.row_id: serialize_row(row) for row in self.second}
        if isinstance(self.second, Taxonomy):
            return {node.node_id: " ".join(self.second.label_path(node.node_id)) for node in self.second}
        return {doc.doc_id: doc.text for doc in self.second}

    def candidate_ids(self) -> List[str]:
        if isinstance(self.second, Table):
            return self.second.row_ids
        if isinstance(self.second, Taxonomy):
            return self.second.node_ids
        return self.second.document_ids

    def validate(self) -> None:
        """Check internal consistency (gold ids exist in the corpora)."""
        query_ids = set(self.query_texts())
        candidate_ids = set(self.candidate_ids())
        for query_id, matches in self.gold.items():
            if query_id not in query_ids:
                raise ValueError(f"gold query {query_id!r} is not in the first corpus")
            missing = matches - candidate_ids
            if missing:
                raise ValueError(f"gold candidates missing from second corpus: {sorted(missing)[:5]}")
        if not self.gold:
            raise ValueError("scenario has no gold matches")

    def summary(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "task": self.task,
            "queries": len(self.first),
            "candidates": len(self.candidate_ids()),
            "annotated": len(self.gold),
            "kb_triples": len(self.kb) if self.kb is not None else 0,
        }
