"""Candidate blocking for faster matching.

The paper's conclusion lists *blocking* as planned future work: instead of
scoring every (query, candidate) pair with cosine similarity, a cheap
blocking pass restricts each query to the candidates it shares at least one
informative term with, and only those pairs are ranked with the embeddings.

Two blockers are provided:

* :class:`TokenBlocking` — inverted index over the terms of the candidate
  documents; a candidate is in the block of a query when they share at
  least ``min_shared_terms`` terms (rare terms can be weighted by IDF).
* :class:`MetadataNeighborhoodBlocking` — graph-native blocking: candidates
  whose metadata node is within ``max_hops`` hops of the query's metadata
  node in the match graph.  This reuses the structure the pipeline already
  built and therefore needs no extra text processing.

Both are lifted to the per-query-id
:class:`~repro.retrieval.base.QueryBlocker` interface by
:class:`TextQueryBlocker` / :class:`GraphQueryBlocker`, which is what
:class:`~repro.retrieval.blocked.BlockedTopK` consumes — so either blocker
plugs into :class:`BlockedMatcher` and ``TDMatch.match`` alike.

:class:`BlockedMatcher` combines a blocker with a fitted
:class:`~repro.core.matcher.MetadataMatcher`: it *scores* only the blocked
pairs (exactly ``BlockingStatistics.compared_pairs`` of them — the full
score matrix is never computed) and falls back to the full ranking when a
block is empty.
"""

from __future__ import annotations

import math
from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Set, Union


from repro.core.matcher import MetadataMatcher
from repro.eval.ranking import RankingSet
from repro.graph.graph import MatchGraph
from repro.retrieval import BlockedTopK
from repro.retrieval.base import QueryBlocker
from repro.text.preprocess import Preprocessor


class TokenBlocking:
    """Inverted-index blocking on shared (optionally IDF-weighted) terms."""

    def __init__(
        self,
        min_shared_terms: int = 1,
        use_idf: bool = True,
        max_block_size: Optional[int] = None,
        preprocessor: Optional[Preprocessor] = None,
    ):
        if min_shared_terms < 1:
            raise ValueError("min_shared_terms must be >= 1")
        self.min_shared_terms = min_shared_terms
        self.use_idf = use_idf
        self.max_block_size = max_block_size
        self.preprocessor = preprocessor or Preprocessor()
        self._index: Dict[str, List[str]] = {}
        self._idf: Dict[str, float] = {}
        self._fitted = False

    # ------------------------------------------------------------------
    def fit(self, candidates: Mapping[str, str]) -> "TokenBlocking":
        """Index the candidate texts."""
        index: Dict[str, List[str]] = defaultdict(list)
        doc_freq: Counter = Counter()
        for candidate_id, text in candidates.items():
            tokens = set(self.preprocessor.tokens(text))
            doc_freq.update(tokens)
            for token in tokens:
                index[token].append(candidate_id)
        n_docs = max(len(candidates), 1)
        self._idf = {t: math.log((1 + n_docs) / (1 + df)) + 1.0 for t, df in doc_freq.items()}
        self._index = dict(index)
        self._fitted = True
        return self

    def block(self, query_text: str) -> List[str]:
        """Candidate ids sharing enough terms with ``query_text``.

        The block is sorted by decreasing (weighted) overlap and truncated
        to ``max_block_size`` when configured.
        """
        if not self._fitted:
            raise RuntimeError("call fit() with the candidate texts first")
        tokens = set(self.preprocessor.tokens(query_text))
        overlap: Counter = Counter()
        weighted: Dict[str, float] = defaultdict(float)
        for token in tokens:
            for candidate_id in self._index.get(token, ()):  # inverted index lookup
                overlap[candidate_id] += 1
                weighted[candidate_id] += self._idf.get(token, 1.0) if self.use_idf else 1.0
        block = [cid for cid, count in overlap.items() if count >= self.min_shared_terms]
        block.sort(key=lambda cid: (-weighted[cid], cid))
        if self.max_block_size is not None:
            block = block[: self.max_block_size]
        return block


class MetadataNeighborhoodBlocking:
    """Graph-native blocking: candidates within ``max_hops`` of the query node."""

    def __init__(self, graph: MatchGraph, max_hops: int = 2, max_block_size: Optional[int] = None):
        if max_hops < 1:
            raise ValueError("max_hops must be >= 1")
        self.graph = graph
        self.max_hops = max_hops
        self.max_block_size = max_block_size

    def block(self, query_label: str, candidate_labels: Mapping[str, str]) -> List[str]:
        """Candidate object ids whose metadata label is near ``query_label``.

        ``candidate_labels`` maps candidate object id → metadata-node label.
        """
        if not self.graph.has_node(query_label):
            return []
        frontier = {query_label}
        seen = {query_label}
        for _ in range(self.max_hops):
            next_frontier: Set[str] = set()
            for node in frontier:
                for neighbor in self.graph.neighbors(node):
                    if neighbor not in seen:
                        seen.add(neighbor)
                        next_frontier.add(neighbor)
            frontier = next_frontier
            if not frontier:
                break
        block = [cid for cid, label in candidate_labels.items() if label in seen]
        if self.max_block_size is not None:
            block = block[: self.max_block_size]
        return block


# ----------------------------------------------------------------------
# QueryBlocker adapters: per-query-id blocks for the retrieval layer.
class TextQueryBlocker:
    """Adapts :class:`TokenBlocking` to the ``QueryBlocker`` interface.

    ``query_texts`` maps query id → text; queries without a text get an
    empty block (triggering the fallback when enabled).
    """

    def __init__(self, blocking: TokenBlocking, query_texts: Mapping[str, str]):
        self.blocking = blocking
        self.query_texts = dict(query_texts)

    def block_for(self, query_id: str) -> List[str]:
        text = self.query_texts.get(query_id, "")
        return self.blocking.block(text) if text else []


class GraphQueryBlocker:
    """Adapts :class:`MetadataNeighborhoodBlocking` to ``QueryBlocker``.

    ``query_labels`` / ``candidate_labels`` map object ids to their
    metadata-node labels in the match graph (the pipeline's
    ``BuiltGraph.first_metadata`` / ``second_metadata``).
    """

    def __init__(
        self,
        blocking: MetadataNeighborhoodBlocking,
        query_labels: Mapping[str, str],
        candidate_labels: Mapping[str, str],
    ):
        self.blocking = blocking
        self.query_labels = dict(query_labels)
        self.candidate_labels = dict(candidate_labels)

    def block_for(self, query_id: str) -> List[str]:
        label = self.query_labels.get(query_id)
        if label is None:
            return []
        return self.blocking.block(label, self.candidate_labels)


@dataclass
class BlockingStatistics:
    """How much work blocking saved compared to the all-pairs comparison."""

    n_queries: int
    n_candidates: int
    compared_pairs: int
    empty_blocks: int

    @property
    def all_pairs(self) -> int:
        return self.n_queries * self.n_candidates

    @property
    def reduction_ratio(self) -> float:
        """Fraction of pairwise comparisons avoided (1.0 = everything)."""
        if self.all_pairs == 0:
            return 0.0
        return 1.0 - self.compared_pairs / self.all_pairs


class BlockedMatcher:
    """Rank only the blocked candidates of each query with the embeddings.

    ``blocker`` may be a fitted :class:`TokenBlocking` (then ``query_texts``
    supplies the per-query text, as before), a
    :class:`MetadataNeighborhoodBlocking` (then ``query_labels`` and
    ``candidate_labels`` supply the object-id → metadata-label maps), or any
    ready-made :class:`~repro.retrieval.base.QueryBlocker`.

    Matching routes through :class:`~repro.retrieval.blocked.BlockedTopK`,
    so exactly ``statistics.compared_pairs`` similarity values are computed
    — the all-pairs score matrix is never materialised.

    Score ties are broken by candidate *index* (position in the matcher's
    candidate list), the retrieval layer's uniform contract.  The historical
    implementation broke ties by candidate id string, so tied candidates may
    order differently than before this refactor.
    """

    def __init__(
        self,
        matcher: MetadataMatcher,
        blocker: Union[TokenBlocking, MetadataNeighborhoodBlocking, QueryBlocker],
        query_texts: Optional[Mapping[str, str]] = None,
        fallback_to_full: bool = True,
        query_labels: Optional[Mapping[str, str]] = None,
        candidate_labels: Optional[Mapping[str, str]] = None,
    ):
        self.matcher = matcher
        if isinstance(blocker, TokenBlocking):
            if query_texts is None:
                raise ValueError("TokenBlocking needs query_texts")
            query_blocker: QueryBlocker = TextQueryBlocker(blocker, query_texts)
        elif isinstance(blocker, MetadataNeighborhoodBlocking):
            if query_labels is None or candidate_labels is None:
                raise ValueError(
                    "MetadataNeighborhoodBlocking needs query_labels and candidate_labels"
                )
            query_blocker = GraphQueryBlocker(blocker, query_labels, candidate_labels)
        else:
            query_blocker = blocker
        self.blocker = query_blocker
        self.fallback_to_full = fallback_to_full
        self._stats: Optional[BlockingStatistics] = None

    @property
    def statistics(self) -> Optional[BlockingStatistics]:
        """Statistics of the last :meth:`match` call."""
        return self._stats

    def match(self, k: int = 20) -> RankingSet:
        backend = BlockedTopK(self.blocker, fallback_to_full=self.fallback_to_full)
        rankings, stats = self.matcher.match_with_stats(k=k, backend=backend)
        self._stats = BlockingStatistics(
            n_queries=stats.n_queries,
            n_candidates=stats.n_candidates,
            compared_pairs=stats.scored_pairs,
            empty_blocks=stats.empty_blocks,
        )
        return rankings
