"""Candidate blocking for faster matching.

The paper's conclusion lists *blocking* as planned future work: instead of
scoring every (query, candidate) pair with cosine similarity, a cheap
blocking pass restricts each query to the candidates it shares at least one
informative term with, and only those pairs are ranked with the embeddings.

Two blockers are provided:

* :class:`TokenBlocking` — inverted index over the terms of the candidate
  documents; a candidate is in the block of a query when they share at
  least ``min_shared_terms`` terms (rare terms can be weighted by IDF).
* :class:`MetadataNeighborhoodBlocking` — graph-native blocking: candidates
  whose metadata node is within ``max_hops`` hops of the query's metadata
  node in the match graph.  This reuses the structure the pipeline already
  built and therefore needs no extra text processing.

:class:`BlockedMatcher` combines a blocker with a fitted
:class:`~repro.core.matcher.MetadataMatcher`: it ranks only the blocked
candidates and falls back to the full ranking when a block is empty.
"""

from __future__ import annotations

import math
from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Set


from repro.core.matcher import MetadataMatcher
from repro.eval.ranking import Ranking, RankingSet
from repro.graph.graph import MatchGraph
from repro.text.preprocess import Preprocessor


class TokenBlocking:
    """Inverted-index blocking on shared (optionally IDF-weighted) terms."""

    def __init__(
        self,
        min_shared_terms: int = 1,
        use_idf: bool = True,
        max_block_size: Optional[int] = None,
        preprocessor: Optional[Preprocessor] = None,
    ):
        if min_shared_terms < 1:
            raise ValueError("min_shared_terms must be >= 1")
        self.min_shared_terms = min_shared_terms
        self.use_idf = use_idf
        self.max_block_size = max_block_size
        self.preprocessor = preprocessor or Preprocessor()
        self._index: Dict[str, List[str]] = {}
        self._idf: Dict[str, float] = {}
        self._fitted = False

    # ------------------------------------------------------------------
    def fit(self, candidates: Mapping[str, str]) -> "TokenBlocking":
        """Index the candidate texts."""
        index: Dict[str, List[str]] = defaultdict(list)
        doc_freq: Counter = Counter()
        for candidate_id, text in candidates.items():
            tokens = set(self.preprocessor.tokens(text))
            doc_freq.update(tokens)
            for token in tokens:
                index[token].append(candidate_id)
        n_docs = max(len(candidates), 1)
        self._idf = {t: math.log((1 + n_docs) / (1 + df)) + 1.0 for t, df in doc_freq.items()}
        self._index = dict(index)
        self._fitted = True
        return self

    def block(self, query_text: str) -> List[str]:
        """Candidate ids sharing enough terms with ``query_text``.

        The block is sorted by decreasing (weighted) overlap and truncated
        to ``max_block_size`` when configured.
        """
        if not self._fitted:
            raise RuntimeError("call fit() with the candidate texts first")
        tokens = set(self.preprocessor.tokens(query_text))
        overlap: Counter = Counter()
        weighted: Dict[str, float] = defaultdict(float)
        for token in tokens:
            for candidate_id in self._index.get(token, ()):  # inverted index lookup
                overlap[candidate_id] += 1
                weighted[candidate_id] += self._idf.get(token, 1.0) if self.use_idf else 1.0
        block = [cid for cid, count in overlap.items() if count >= self.min_shared_terms]
        block.sort(key=lambda cid: (-weighted[cid], cid))
        if self.max_block_size is not None:
            block = block[: self.max_block_size]
        return block


class MetadataNeighborhoodBlocking:
    """Graph-native blocking: candidates within ``max_hops`` of the query node."""

    def __init__(self, graph: MatchGraph, max_hops: int = 2, max_block_size: Optional[int] = None):
        if max_hops < 1:
            raise ValueError("max_hops must be >= 1")
        self.graph = graph
        self.max_hops = max_hops
        self.max_block_size = max_block_size

    def block(self, query_label: str, candidate_labels: Mapping[str, str]) -> List[str]:
        """Candidate object ids whose metadata label is near ``query_label``.

        ``candidate_labels`` maps candidate object id → metadata-node label.
        """
        if not self.graph.has_node(query_label):
            return []
        frontier = {query_label}
        seen = {query_label}
        for _ in range(self.max_hops):
            next_frontier: Set[str] = set()
            for node in frontier:
                for neighbor in self.graph.neighbors(node):
                    if neighbor not in seen:
                        seen.add(neighbor)
                        next_frontier.add(neighbor)
            frontier = next_frontier
            if not frontier:
                break
        block = [cid for cid, label in candidate_labels.items() if label in seen]
        if self.max_block_size is not None:
            block = block[: self.max_block_size]
        return block


@dataclass
class BlockingStatistics:
    """How much work blocking saved compared to the all-pairs comparison."""

    n_queries: int
    n_candidates: int
    compared_pairs: int
    empty_blocks: int

    @property
    def all_pairs(self) -> int:
        return self.n_queries * self.n_candidates

    @property
    def reduction_ratio(self) -> float:
        """Fraction of pairwise comparisons avoided (1.0 = everything)."""
        if self.all_pairs == 0:
            return 0.0
        return 1.0 - self.compared_pairs / self.all_pairs


class BlockedMatcher:
    """Rank only the blocked candidates of each query with the embeddings."""

    def __init__(
        self,
        matcher: MetadataMatcher,
        blocker: TokenBlocking,
        query_texts: Mapping[str, str],
        fallback_to_full: bool = True,
    ):
        self.matcher = matcher
        self.blocker = blocker
        self.query_texts = dict(query_texts)
        self.fallback_to_full = fallback_to_full
        self._stats: Optional[BlockingStatistics] = None

    @property
    def statistics(self) -> Optional[BlockingStatistics]:
        """Statistics of the last :meth:`match` call."""
        return self._stats

    def match(self, k: int = 20) -> RankingSet:
        scores = self.matcher.score_matrix()
        candidate_index = {cid: i for i, cid in enumerate(self.matcher.candidate_ids)}
        rankings = RankingSet()
        compared = 0
        empty_blocks = 0
        for row, query_id in enumerate(self.matcher.query_ids):
            text = self.query_texts.get(query_id, "")
            block = self.blocker.block(text) if text else []
            block = [cid for cid in block if cid in candidate_index]
            if not block:
                empty_blocks += 1
                if self.fallback_to_full:
                    block = list(self.matcher.candidate_ids)
            compared += len(block)
            scored = [(cid, float(scores[row, candidate_index[cid]])) for cid in block]
            scored.sort(key=lambda pair: (-pair[1], pair[0]))
            ranking = Ranking(query_id=query_id)
            for cid, score in scored[:k]:
                ranking.add(cid, score)
            rankings.add(ranking)
        self._stats = BlockingStatistics(
            n_queries=len(self.matcher.query_ids),
            n_candidates=len(self.matcher.candidate_ids),
            compared_pairs=compared,
            empty_blocks=empty_blocks,
        )
        return rankings
