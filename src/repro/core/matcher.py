"""Unsupervised matching of metadata nodes (Section IV-B).

Given vectors for the metadata nodes of the two corpora, the matcher ranks,
for every query object, the candidate objects of the other corpus by cosine
similarity.  It also supports averaging its score matrix with the one of a
pre-trained sentence encoder, the combination evaluated in Figure 10.
"""

from __future__ import annotations

from typing import List, Mapping, Optional, Sequence

import numpy as np

from repro.embeddings.similarity import cosine_matrix, top_k_neighbors
from repro.eval.ranking import Ranking, RankingSet


def _matrix_from_vectors(ids: Sequence[str], vectors: Mapping[str, np.ndarray], dim: int) -> np.ndarray:
    matrix = np.zeros((len(ids), dim), dtype=float)
    for i, object_id in enumerate(ids):
        vec = vectors.get(object_id)
        if vec is not None:
            matrix[i] = vec
    return matrix


def combine_score_matrices(matrices: Sequence[np.ndarray], weights: Optional[Sequence[float]] = None) -> np.ndarray:
    """Average several score matrices (Figure 10's W-RW & S-BE combination).

    Each matrix is min-max normalised per query row before averaging so that
    methods with different score scales contribute equally.
    """
    if not matrices:
        raise ValueError("at least one score matrix is required")
    shape = matrices[0].shape
    for m in matrices:
        if m.shape != shape:
            raise ValueError("all score matrices must have the same shape")
    if weights is None:
        weights = [1.0] * len(matrices)
    if len(weights) != len(matrices):
        raise ValueError("weights must match the number of matrices")
    total = np.zeros(shape, dtype=float)
    for matrix, weight in zip(matrices, weights):
        normalised = np.zeros_like(matrix, dtype=float)
        for i, row in enumerate(matrix):
            low, high = float(row.min()), float(row.max())
            if high > low:
                normalised[i] = (row - low) / (high - low)
            else:
                normalised[i] = 0.0
        total += weight * normalised
    return total / sum(weights)


class MetadataMatcher:
    """Ranks candidate objects for query objects using vector similarity."""

    def __init__(
        self,
        query_vectors: Mapping[str, np.ndarray],
        candidate_vectors: Mapping[str, np.ndarray],
    ):
        if not query_vectors:
            raise ValueError("query_vectors is empty")
        if not candidate_vectors:
            raise ValueError("candidate_vectors is empty")
        self.query_ids: List[str] = list(query_vectors)
        self.candidate_ids: List[str] = list(candidate_vectors)
        dims = {v.shape[0] for v in query_vectors.values()} | {
            v.shape[0] for v in candidate_vectors.values()
        }
        if len(dims) != 1:
            raise ValueError(f"inconsistent vector dimensionalities: {sorted(dims)}")
        self._dim = dims.pop()
        self._query_matrix = _matrix_from_vectors(self.query_ids, query_vectors, self._dim)
        self._candidate_matrix = _matrix_from_vectors(self.candidate_ids, candidate_vectors, self._dim)
        self._scores: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    def score_matrix(self) -> np.ndarray:
        """Cosine similarity matrix (queries × candidates), cached."""
        if self._scores is None:
            self._scores = cosine_matrix(self._query_matrix, self._candidate_matrix)
        return self._scores

    def match(self, k: int = 20, scores: Optional[np.ndarray] = None) -> RankingSet:
        """Top-k ranking per query; ``scores`` overrides the cosine matrix."""
        matrix = scores if scores is not None else self.score_matrix()
        if matrix.shape != (len(self.query_ids), len(self.candidate_ids)):
            raise ValueError("score matrix shape does not match query/candidate ids")
        neighbors = top_k_neighbors(matrix, k, self.candidate_ids)
        rankings = RankingSet()
        for query_id, ranked in zip(self.query_ids, neighbors):
            ranking = Ranking(query_id=query_id)
            for candidate_id, score in ranked:
                ranking.add(candidate_id, score)
            rankings.add(ranking)
        return rankings

    def match_combined(
        self,
        other_scores: np.ndarray,
        k: int = 20,
        weights: Optional[Sequence[float]] = None,
    ) -> RankingSet:
        """Match using the average of this matcher's scores and ``other_scores``."""
        combined = combine_score_matrices([self.score_matrix(), other_scores], weights=weights)
        return self.match(k=k, scores=combined)
