"""Unsupervised matching of metadata nodes (Section IV-B).

Given vectors for the metadata nodes of the two corpora, the matcher ranks,
for every query object, the candidate objects of the other corpus by cosine
similarity.  The ranking itself is delegated to a pluggable
:class:`~repro.retrieval.base.RetrievalBackend` (dense chunked scoring by
default; see :mod:`repro.retrieval`), and the matcher also supports
averaging its score matrix with the one of a pre-trained sentence encoder —
the combination evaluated in Figure 10, implemented by
:class:`~repro.retrieval.combined.CombinedTopK`.
"""

from __future__ import annotations

from typing import List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.embeddings.similarity import cosine_matrix, top_k_neighbors
from repro.eval.ranking import Ranking, RankingSet
from repro.retrieval import CombinedTopK, DenseTopK, RetrievalStats, combine_scores
from repro.retrieval.base import RetrievalBackend


def _matrix_from_vectors(ids: Sequence[str], vectors: Mapping[str, np.ndarray], dim: int) -> np.ndarray:
    matrix = np.zeros((len(ids), dim), dtype=float)
    for i, object_id in enumerate(ids):
        vec = vectors.get(object_id)
        if vec is not None:
            matrix[i] = vec
    return matrix


def combine_score_matrices(matrices: Sequence[np.ndarray], weights: Optional[Sequence[float]] = None) -> np.ndarray:
    """Average several score matrices (Figure 10's W-RW & S-BE combination).

    Each matrix is min-max normalised per query row before averaging so that
    methods with different score scales contribute equally; constant rows
    contribute 0.  Delegates to the vectorised
    :func:`repro.retrieval.combined.combine_scores`.
    """
    return combine_scores(matrices, weights=weights)


class MetadataMatcher:
    """Ranks candidate objects for query objects using vector similarity.

    ``backend`` selects the retrieval implementation; ``None`` uses a
    :class:`~repro.retrieval.dense.DenseTopK` with ``dtype=None`` so scores
    stay in the input (float64) precision of the reference implementation.
    """

    def __init__(
        self,
        query_vectors: Mapping[str, np.ndarray],
        candidate_vectors: Mapping[str, np.ndarray],
        backend: Optional[RetrievalBackend] = None,
    ):
        if not query_vectors:
            raise ValueError("query_vectors is empty")
        if not candidate_vectors:
            raise ValueError("candidate_vectors is empty")
        self.query_ids: List[str] = list(query_vectors)
        self.candidate_ids: List[str] = list(candidate_vectors)
        dims = {v.shape[0] for v in query_vectors.values()} | {
            v.shape[0] for v in candidate_vectors.values()
        }
        if len(dims) != 1:
            raise ValueError(f"inconsistent vector dimensionalities: {sorted(dims)}")
        self._dim = dims.pop()
        self._query_matrix = _matrix_from_vectors(self.query_ids, query_vectors, self._dim)
        self._candidate_matrix = _matrix_from_vectors(self.candidate_ids, candidate_vectors, self._dim)
        self.backend: RetrievalBackend = backend if backend is not None else DenseTopK(dtype=None)
        self._scores: Optional[np.ndarray] = None
        self._last_stats: Optional[RetrievalStats] = None

    # ------------------------------------------------------------------
    @property
    def retrieval_stats(self) -> Optional[RetrievalStats]:
        """Stats of the last backend-routed :meth:`match` call."""
        return self._last_stats

    def score_matrix(self) -> np.ndarray:
        """Cosine similarity matrix (queries × candidates), cached.

        Only needed for score-level operations (external combination); the
        top-k path never materialises it.
        """
        if self._scores is None:
            self._scores = cosine_matrix(self._query_matrix, self._candidate_matrix)
        return self._scores

    def match_with_stats(
        self, k: int = 20, backend: Optional[RetrievalBackend] = None
    ) -> Tuple[RankingSet, RetrievalStats]:
        """Top-k ranking per query plus the backend's work statistics."""
        backend = backend if backend is not None else self.backend
        # A full-precision dense pass over an already-cached score matrix
        # (e.g. a second match() after match_combined) reuses the cache
        # instead of repeating the matmul; the top-k outcome is identical.
        if (
            self._scores is not None
            and isinstance(backend, DenseTopK)
            and backend.dtype is None
        ):
            result = backend.retrieve_from_scores(self._scores, k)
        else:
            result = backend.retrieve(
                self._query_matrix,
                self._candidate_matrix,
                k,
                query_ids=self.query_ids,
                candidate_ids=self.candidate_ids,
            )
        self._last_stats = result.stats
        return result.to_rankings(self.query_ids, self.candidate_ids), result.stats

    def match(self, k: int = 20, scores: Optional[np.ndarray] = None) -> RankingSet:
        """Top-k ranking per query; ``scores`` overrides the cosine matrix."""
        if scores is None:
            rankings, _stats = self.match_with_stats(k=k)
            return rankings
        if scores.shape != (len(self.query_ids), len(self.candidate_ids)):
            raise ValueError("score matrix shape does not match query/candidate ids")
        neighbors = top_k_neighbors(scores, k, self.candidate_ids)
        rankings = RankingSet()
        for query_id, ranked in zip(self.query_ids, neighbors):
            ranking = Ranking(query_id=query_id)
            for candidate_id, score in ranked:
                ranking.add(candidate_id, score)
            rankings.add(ranking)
        return rankings

    def match_combined(
        self,
        other_scores: np.ndarray,
        k: int = 20,
        weights: Optional[Sequence[float]] = None,
    ) -> RankingSet:
        """Match using the fusion of this matcher's scores and ``other_scores``."""
        if other_scores.shape != (len(self.query_ids), len(self.candidate_ids)):
            raise ValueError("score matrix shape does not match query/candidate ids")
        combined = CombinedTopK(weights=weights)
        result = combined.retrieve_from_scores([self.score_matrix(), other_scores], k=k)
        self._last_stats = result.stats
        return result.to_rankings(self.query_ids, self.candidate_ids)
