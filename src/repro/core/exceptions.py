"""Exceptions of the core pipeline."""

from __future__ import annotations


class PipelineError(RuntimeError):
    """Raised when the TDmatch pipeline is used or configured incorrectly."""


class NotFittedError(PipelineError):
    """Raised when matching is requested before the pipeline was fitted."""
