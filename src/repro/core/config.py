"""Configuration objects of the TDmatch pipeline.

The defaults follow the paper's default configuration:

* graph construction with Intersect filtering and n-grams up to 3 tokens;
* 100 random walks of length 30 per node (reducible for small graphs);
* Word2Vec Skip-gram with window 3 for text-to-data tasks, CBOW with window
  15 for text-only tasks;
* expansion and compression disabled unless a knowledge base / ratio is
  supplied.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.embeddings.word2vec import Word2VecConfig
from repro.graph.builder import GraphBuilderConfig
from repro.graph.walks import RandomWalkConfig


@dataclass
class MergeConfig:
    """Node-merging options (Section II-C).

    Parameters
    ----------
    bucket_numeric:
        Merge numeric data nodes with equal-width buckets.
    bucket_width:
        Explicit width; None uses the Freedman–Diaconis rule.
    pretrained:
        A pre-trained embedding resource for synonym/typo merging; None
        disables embedding-based merging.
    gamma:
        Cosine threshold; None calibrates it from ``synonym_pairs``.
    synonym_pairs:
        Calibration pairs for γ (ignored when ``gamma`` is given).
    """

    bucket_numeric: bool = False
    bucket_width: Optional[float] = None
    pretrained: Optional[object] = None
    gamma: Optional[float] = None
    synonym_pairs: Optional[list] = None

    @property
    def merge_embeddings(self) -> bool:
        return self.pretrained is not None


@dataclass
class ExpansionConfig:
    """Graph expansion options (Algorithm 2)."""

    resource: Optional[object] = None
    max_relations_per_node: Optional[int] = None
    remove_sinks: bool = True

    @property
    def enabled(self) -> bool:
        return self.resource is not None


@dataclass
class CompressionConfig:
    """Graph compression options (Algorithm 3).

    ``method`` is one of "msp", "ssp", "ssum", "random-node", "random-edge";
    ``ratio`` is β for MSP/SSP, the target size ratio for SSuM, or the keep
    ratio for the random samplers.  ``enabled`` defaults to False.
    """

    enabled: bool = False
    method: str = "msp"
    ratio: float = 0.5
    max_paths_per_pair: int = 16

    def __post_init__(self) -> None:
        valid = {"msp", "ssp", "ssum", "random-node", "random-edge"}
        if self.method not in valid:
            raise ValueError(f"unknown compression method {self.method!r}; valid: {sorted(valid)}")
        if self.ratio <= 0:
            raise ValueError("compression ratio must be positive")


@dataclass
class TDMatchConfig:
    """Full pipeline configuration."""

    builder: GraphBuilderConfig = field(default_factory=GraphBuilderConfig)
    walks: RandomWalkConfig = field(default_factory=RandomWalkConfig)
    word2vec: Word2VecConfig = field(default_factory=Word2VecConfig)
    merge: MergeConfig = field(default_factory=MergeConfig)
    expansion: ExpansionConfig = field(default_factory=ExpansionConfig)
    compression: CompressionConfig = field(default_factory=CompressionConfig)

    @classmethod
    def for_text_to_data(cls, **overrides) -> "TDMatchConfig":
        """Paper defaults for the text-to-data task: Skip-gram, window 3."""
        config = cls()
        config.word2vec.sg = True
        config.word2vec.window = 3
        return _apply_overrides(config, overrides)

    @classmethod
    def for_text_tasks(cls, **overrides) -> "TDMatchConfig":
        """Paper defaults for text-oriented tasks: CBOW, window 15."""
        config = cls()
        config.word2vec.sg = False
        config.word2vec.window = 15
        return _apply_overrides(config, overrides)

    @classmethod
    def fast(cls, **overrides) -> "TDMatchConfig":
        """A reduced configuration for unit tests and small examples."""
        config = cls()
        config.walks.num_walks = 8
        config.walks.walk_length = 12
        config.word2vec.vector_size = 48
        config.word2vec.epochs = 2
        return _apply_overrides(config, overrides)


def _apply_overrides(config: TDMatchConfig, overrides: dict) -> TDMatchConfig:
    """Apply ``section__field=value`` style overrides, e.g. walks__num_walks=10."""
    for key, value in overrides.items():
        if "__" in key:
            section, field_name = key.split("__", 1)
            target = getattr(config, section)
            if not hasattr(target, field_name):
                raise AttributeError(f"{section} config has no field {field_name!r}")
            setattr(target, field_name, value)
        else:
            if not hasattr(config, key):
                raise AttributeError(f"TDMatchConfig has no section {key!r}")
            setattr(config, key, value)
    return config
