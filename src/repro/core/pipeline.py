"""The TDmatch pipeline (Figure 3 of the paper).

``TDMatch`` wires the whole unsupervised solution together:

1. build the joint graph over the two corpora (Algorithm 1);
2. optionally merge nodes (numeric bucketing, pre-trained-embedding merge);
3. optionally expand the graph with an external knowledge base (Algorithm 2);
4. optionally compress it (Algorithm 3 / baselines);
5. generate random walks and train Word2Vec on them (Algorithm 4);
6. rank, for every document of the query corpus, the documents of the other
   corpus by cosine similarity of their metadata-node vectors — delegated
   to a pluggable retrieval backend (:mod:`repro.retrieval`): exact chunked
   dense top-k by default, or blocked scoring that skips non-blocked pairs.

Typical use::

    pipeline = TDMatch(TDMatchConfig.for_text_to_data(), seed=7)
    pipeline.fit(reviews_corpus, movies_table)
    rankings = pipeline.match(k=20)
"""

from __future__ import annotations

import copy
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional

import numpy as np

from repro.core.config import TDMatchConfig
from repro.core.exceptions import NotFittedError, PipelineError
from repro.core.matcher import MetadataMatcher
from repro.corpus.documents import TextCorpus
from repro.corpus.table import Table
from repro.corpus.taxonomy import Taxonomy
from repro.embeddings.word2vec import Word2Vec
from repro.eval.ranking import RankingSet
from repro.graph.builder import BuiltGraph, GraphBuilder
from repro.graph.compression import (
    CompressionResult,
    msp_compress,
    random_edge_compress,
    random_node_compress,
    ssp_compress,
    ssum_compress,
)
from repro.graph.expansion import ExpansionResult, expand_graph
from repro.graph.merging import EmbeddingMerger, NumericBucketer
from repro.graph.walk_engine import make_walk_engine
from repro.parallel.reliability import drain_events
from repro.retrieval import BlockedTopK, DenseTopK, RetrievalStats
from repro.retrieval.base import QueryBlocker, RetrievalBackend
from repro.utils.logging import get_logger
from repro.utils.rng import derive_rng
from repro.utils.timing import Stopwatch, TimingRegistry

logger = get_logger(__name__)


def _timed_iter(items: Iterable[List[str]], stopwatch: Stopwatch) -> Iterator[List[str]]:
    """Yield from ``items`` while charging production time to ``stopwatch``."""
    iterator = iter(items)
    while True:
        stopwatch.start()
        try:
            item = next(iterator)
        except StopIteration:
            stopwatch.stop()
            return
        stopwatch.stop()
        yield item


@dataclass
class MatchResult:
    """A ranking set together with provenance information."""

    rankings: RankingSet
    query_side: str
    k: int
    retrieval: Optional[RetrievalStats] = None

    def to_dict(self) -> Dict[str, object]:
        """The result as a plain JSON-able dict (for ``--json`` / reports)."""
        return {
            "query_side": self.query_side,
            "k": self.k,
            "rankings": {
                ranking.query_id: [
                    [candidate_id, float(score)]
                    for candidate_id, score in ranking.candidates
                ]
                for ranking in self.rankings
            },
            "retrieval": (
                {
                    "backend": self.retrieval.backend,
                    "n_queries": self.retrieval.n_queries,
                    "n_candidates": self.retrieval.n_candidates,
                    "scored_pairs": self.retrieval.scored_pairs,
                    "all_pairs": self.retrieval.all_pairs,
                    "reduction_ratio": self.retrieval.reduction_ratio,
                }
                if self.retrieval is not None
                else None
            ),
        }


@dataclass
class PipelineState:
    """Everything the pipeline learned during :meth:`TDMatch.fit`."""

    built: BuiltGraph
    model: Word2Vec
    merge_reports: list = field(default_factory=list)
    expansion: Optional[ExpansionResult] = None
    compression: Optional[CompressionResult] = None


class TDMatch:
    """End-to-end unsupervised matcher for heterogeneous corpora."""

    def __init__(self, config: Optional[TDMatchConfig] = None, seed=None):
        self.config = config or TDMatchConfig()
        self.seed = seed
        self.timings = TimingRegistry()
        self._state: Optional[PipelineState] = None
        self._builder: Optional[GraphBuilder] = None
        self._builder_config = None  # snapshot the builder was created from
        self._corpus_kinds: Optional[tuple] = None
        self._delta_count = 0  # incremental batches applied since fit/load
        self._reliability_events: List = []  # supervision incidents absorbed so far

    # ------------------------------------------------------------------
    # Fitting
    def fit(self, first, second) -> "TDMatch":
        """Build the graph over ``first`` and ``second`` and learn embeddings."""
        self._validate_corpus(first, "first")
        self._validate_corpus(second, "second")
        self._corpus_kinds = (self._corpus_kind(first), self._corpus_kind(second))
        self._delta_count = 0
        # Discard supervision incidents left over from other pipelines in
        # this process; this fit's incidents are absorbed at the end.
        drain_events()
        self._reliability_events = []

        with self.timings.measure("graph_build"):
            built = self._graph_builder().build(first, second)
        self.timings.set_note("graph_engine", built.engine)
        if built.filter_stats is not None:
            self.timings.set_note(
                "filter_kept_fraction", f"{built.filter_stats.kept_fraction:.3f}"
            )
        logger.info(
            "graph built: %d nodes, %d edges", built.graph.num_nodes(), built.graph.num_edges()
        )

        merge_reports = self._apply_merging(built)
        expansion = self._apply_expansion(built)
        compression = self._apply_compression(built)

        # Walk sentences stream straight into Word2Vec training instead of
        # materialising the full corpus first; the stopwatch around each
        # ``next()`` keeps "walks" and "word2vec" separately attributed.
        parallel = self.config.parallel
        engine = make_walk_engine(built.graph, self.config.walks, parallel=parallel)
        walk_timer = Stopwatch()
        sentences = _timed_iter(
            engine.iter_walks(seed=derive_rng(self.seed, "walks")), walk_timer
        )
        train_start = time.perf_counter()
        model = Word2Vec(
            self.config.word2vec, seed=derive_rng(self.seed, "word2vec"), parallel=parallel
        )
        model.train(sentences)
        train_total = time.perf_counter() - train_start
        self.timings.add("walks", walk_timer.stop())
        self.timings.add("word2vec", max(0.0, train_total - walk_timer.elapsed))
        self.timings.set_note("walk_engine", engine.name)
        self.timings.set_note("num_workers", str(parallel.num_workers))
        if parallel.enabled:
            self.timings.set_note("parallel_shards", str(parallel.shards))
            self.timings.set_note("parallel_stages", ",".join(parallel.stage_names()))
        if model.stats is not None:
            self.timings.set_note("w2v_trainer", model.stats.trainer)
            self.timings.set_note("w2v_pairs_per_sec", f"{model.stats.pairs_per_sec:.0f}")

        self._state = PipelineState(
            built=built,
            model=model,
            merge_reports=merge_reports,
            expansion=expansion,
            compression=compression,
        )
        self._absorb_reliability_events()
        return self

    def _absorb_reliability_events(self) -> None:
        """Fold collected worker-supervision incidents into the timing notes.

        The pools record incidents (timeouts, crashes, retries,
        degradations) into the module-level collector as they happen; this
        drains it so ``report()`` / ``--json`` expose what went wrong and
        how it was absorbed, per the reliability policy.
        """
        events = drain_events()
        if not events:
            return
        self._reliability_events.extend(events)
        all_events = self._reliability_events
        failures = sum(1 for e in all_events if e.kind in ("crash", "timeout"))
        retries = sum(1 for e in all_events if e.kind == "retry")
        degraded = sum(1 for e in all_events if e.kind == "degraded")
        self.timings.set_note("reliability_failures", str(failures))
        self.timings.set_note("reliability_retries", str(retries))
        self.timings.set_note("reliability_degraded", str(degraded))
        self.timings.set_note(
            "reliability_log", "; ".join(e.summary() for e in all_events)
        )

    def _graph_builder(self) -> GraphBuilder:
        """The pipeline's graph builder, reused across :meth:`fit` calls.

        Reuse keeps the bulk engine's value-level interner warm, so
        re-fitting over the same or overlapping corpora (parameter sweeps,
        growing datasets) skips preprocessing for every value seen before.
        The builder is rebuilt when ``config.builder`` changes (compared
        against a deep-copied snapshot, since configs are mutable).
        """
        if self._builder is None or self._builder_config != self.config.builder:
            self._builder = GraphBuilder(self.config.builder)
            self._builder_config = copy.deepcopy(self.config.builder)
        return self._builder

    @staticmethod
    def _corpus_kind(corpus) -> str:
        if isinstance(corpus, Table):
            return "table"
        if isinstance(corpus, Taxonomy):
            return "taxonomy"
        return "text"

    def _validate_corpus(self, corpus, position: str) -> None:
        if not isinstance(corpus, (Table, TextCorpus, Taxonomy)):
            raise PipelineError(
                f"{position} corpus must be a Table, TextCorpus, or Taxonomy, got {type(corpus)!r}"
            )
        if len(corpus) == 0:
            raise PipelineError(f"{position} corpus is empty")

    # -- optional graph refinement stages --------------------------------
    def _apply_merging(self, built: BuiltGraph) -> list:
        reports: list = []
        merge_cfg = self.config.merge
        if merge_cfg.bucket_numeric:
            with self.timings.measure("merge_bucketing"):
                bucketer = NumericBucketer(width=merge_cfg.bucket_width)
                reports.append(bucketer.apply(built.graph))
        if merge_cfg.merge_embeddings:
            with self.timings.measure("merge_embeddings"):
                merger = EmbeddingMerger(merge_cfg.pretrained, threshold=merge_cfg.gamma)
                if merger.threshold is None:
                    if not merge_cfg.synonym_pairs:
                        raise PipelineError(
                            "embedding merging needs either gamma or synonym_pairs for calibration"
                        )
                    merger.calibrate_threshold(merge_cfg.synonym_pairs)
                reports.append(merger.apply(built.graph))
        return reports

    def _apply_expansion(self, built: BuiltGraph) -> Optional[ExpansionResult]:
        expansion_cfg = self.config.expansion
        if not expansion_cfg.enabled:
            return None
        with self.timings.measure("expansion"):
            return expand_graph(
                built.graph,
                expansion_cfg.resource,
                max_relations_per_node=expansion_cfg.max_relations_per_node,
                remove_sinks=expansion_cfg.remove_sinks,
            )

    def _apply_compression(self, built: BuiltGraph) -> Optional[CompressionResult]:
        compression_cfg = self.config.compression
        if not compression_cfg.enabled:
            return None
        with self.timings.measure("compression"):
            seed = derive_rng(self.seed, "compression")
            if compression_cfg.method in ("msp", "ssp"):
                self.timings.set_note("compression_engine", compression_cfg.engine)
            if compression_cfg.method == "msp":
                result = msp_compress(
                    built.graph,
                    built.first_labels(),
                    built.second_labels(),
                    beta=compression_cfg.ratio,
                    seed=seed,
                    max_paths_per_pair=compression_cfg.max_paths_per_pair,
                    engine=compression_cfg.engine,
                    parallel=self.config.parallel,
                )
            elif compression_cfg.method == "ssp":
                result = ssp_compress(
                    built.graph,
                    beta=compression_cfg.ratio,
                    seed=seed,
                    max_paths_per_pair=compression_cfg.max_paths_per_pair,
                    engine=compression_cfg.engine,
                    parallel=self.config.parallel,
                )
            elif compression_cfg.method == "ssum":
                result = ssum_compress(built.graph, target_ratio=compression_cfg.ratio, seed=seed)
            elif compression_cfg.method == "random-node":
                result = random_node_compress(built.graph, keep_ratio=compression_cfg.ratio, seed=seed)
            else:
                result = random_edge_compress(built.graph, keep_ratio=compression_cfg.ratio, seed=seed)
        # The compressed graph replaces the original for walks and matching.
        built.graph = result.graph
        return result

    # ------------------------------------------------------------------
    # Introspection
    @property
    def state(self) -> PipelineState:
        if self._state is None:
            raise NotFittedError("call fit() before accessing the pipeline state")
        return self._state

    @property
    def graph(self):
        return self.state.built.graph

    @property
    def model(self) -> Word2Vec:
        return self.state.model

    def metadata_vectors(self, side: str = "first") -> Dict[str, np.ndarray]:
        """Learned vectors of the metadata nodes of one corpus.

        Metadata nodes that fell out of the walk vocabulary (isolated nodes)
        get a zero vector so every document still receives a ranking.
        """
        state = self.state
        if side == "first":
            mapping = state.built.first_metadata
        elif side == "second":
            mapping = state.built.second_metadata
        else:
            raise ValueError("side must be 'first' or 'second'")
        dim = self.config.word2vec.vector_size
        vectors: Dict[str, np.ndarray] = {}
        for object_id, label in mapping.items():
            vec = state.model.vector(label)
            vectors[object_id] = vec if vec is not None else np.zeros(dim)
        return vectors

    # ------------------------------------------------------------------
    # Matching
    def matcher(self, query_side: str = "first") -> MetadataMatcher:
        """A :class:`MetadataMatcher` for the chosen query side."""
        if query_side not in ("first", "second"):
            raise ValueError("query_side must be 'first' or 'second'")
        candidate_side = "second" if query_side == "first" else "first"
        return MetadataMatcher(
            query_vectors=self.metadata_vectors(query_side),
            candidate_vectors=self.metadata_vectors(candidate_side),
        )

    def _retrieval_dtype(self):
        return np.float32 if self.config.retrieval.dtype == "float32" else None

    def _graph_query_blocker(self, query_side: str) -> QueryBlocker:
        """Graph-native blocker over the fitted match graph."""
        # Imported here: repro.core.blocking imports this module's sibling
        # matcher, keeping the blocker classes out of pipeline import time.
        from repro.core.blocking import GraphQueryBlocker, MetadataNeighborhoodBlocking

        cfg = self.config.retrieval
        built = self.state.built
        query_labels = built.first_metadata if query_side == "first" else built.second_metadata
        candidate_labels = built.second_metadata if query_side == "first" else built.first_metadata
        blocking = MetadataNeighborhoodBlocking(
            self.graph, max_hops=cfg.max_hops, max_block_size=cfg.max_block_size
        )
        return GraphQueryBlocker(blocking, query_labels, candidate_labels)

    def retrieval_backend(
        self, query_side: str = "first", blocker: Optional[QueryBlocker] = None
    ) -> RetrievalBackend:
        """The retrieval backend selected by ``config.retrieval``.

        An explicit ``blocker`` forces the blocked backend; otherwise the
        "blocked" backend with "neighborhood" blocking builds the
        graph-native blocker from the fitted match graph, and "token"
        blocking must be supplied as a ready-made blocker (it needs the
        corpus texts, which the fitted pipeline does not retain).
        """
        cfg = self.config.retrieval
        dtype = self._retrieval_dtype()
        if blocker is not None:
            return BlockedTopK(
                blocker,
                fallback_to_full=cfg.fallback_to_full,
                dtype=dtype,
                chunk_size=cfg.chunk_size,
            )
        if cfg.backend == "blocked":
            if cfg.blocking == "token":
                raise PipelineError(
                    "token blocking needs the corpus texts; build a TokenBlocking + "
                    "TextQueryBlocker and pass it via match(blocker=...)"
                )
            return BlockedTopK(
                self._graph_query_blocker(query_side),
                fallback_to_full=cfg.fallback_to_full,
                dtype=dtype,
                chunk_size=cfg.chunk_size,
            )
        return DenseTopK(chunk_size=cfg.chunk_size, dtype=dtype)

    def match(
        self,
        k: int = 20,
        query_side: str = "first",
        blocker: Optional[QueryBlocker] = None,
    ) -> RankingSet:
        """Rank the top-k candidates of the other corpus for every query."""
        return self.match_result(k=k, query_side=query_side, blocker=blocker).rankings

    def match_result(
        self,
        k: int = 20,
        query_side: str = "first",
        blocker: Optional[QueryBlocker] = None,
    ) -> MatchResult:
        backend = self.retrieval_backend(query_side, blocker=blocker)
        with self.timings.measure("match"):
            rankings, stats = self.matcher(query_side).match_with_stats(k=k, backend=backend)
        self.timings.set_note("retrieval_backend", stats.backend)
        self.timings.set_note("compared_pairs", str(stats.scored_pairs))
        self.timings.set_note("reduction_ratio", f"{stats.reduction_ratio:.3f}")
        return MatchResult(rankings=rankings, query_side=query_side, k=k, retrieval=stats)

    # ------------------------------------------------------------------
    # Persistence (single-file, memory-mappable serving index)
    def save(self, path: str) -> str:
        """Serialise the fitted pipeline into a single index file.

        The file contains everything :meth:`match` needs — CSR graph
        snapshot, embedding matrices, vocabulary, metadata maps, and a
        config snapshot — and is memory-mappable: ``load(path, mmap=True)``
        opens the embeddings as shared read-only pages.
        """
        from repro.serving.index import save_pipeline

        return save_pipeline(self, path)

    @classmethod
    def load(cls, path: str, mmap: Optional[bool] = None, verify: str = "header") -> "TDMatch":
        """Restore a ready-to-serve pipeline from :meth:`save` output.

        ``mmap=None`` honours the ``serving.mmap`` flag stored in the
        index; ``True`` memory-maps the arrays (N processes share pages),
        ``False`` loads private writable copies.  ``verify`` controls
        corruption detection before serving: ``"header"`` (default) checks
        the container structure and header checksum, ``"full"`` also CRCs
        every array blob (raising
        :class:`~repro.serving.index.IndexCorruptionError` naming the
        first bad one), ``"none"`` keeps only the structural checks.
        """
        from repro.serving.index import load_pipeline

        return load_pipeline(path, mmap=mmap, verify=verify)

    # ------------------------------------------------------------------
    # Incremental fit
    def add_documents(self, documents, side: str = "second") -> List[str]:
        """Add text documents to a fitted pipeline without a full refit.

        The delta is spliced into the graph, walks are regenerated only in
        the touched neighbourhood, and the model is warm-start fine-tuned
        on them.  Returns the new metadata labels.
        """
        from repro.serving.incremental import add_documents

        try:
            return add_documents(self, documents, side=side)
        finally:
            self._absorb_reliability_events()

    def add_records(self, records, side: str = "second") -> List[str]:
        """Add table rows to a fitted pipeline without a full refit."""
        from repro.serving.incremental import add_records

        try:
            return add_records(self, records, side=side)
        finally:
            self._absorb_reliability_events()

    def remove(self, object_ids, side: str = "second") -> List[str]:
        """Remove objects and their metadata nodes from a fitted pipeline."""
        from repro.serving.incremental import remove

        return remove(self, object_ids, side=side)

    # ------------------------------------------------------------------
    # Structured reporting
    def engines(self) -> Dict[str, str]:
        """The engine selected for each pipeline stage (see ``ENGINE_STAGES``)."""
        return dict(self.config.engines)

    def report(self) -> Dict[str, object]:
        """A JSON-able report of engines, timings, and fitted-state shape."""
        report: Dict[str, object] = {
            "engines": self.engines(),
            "timings": self.timings.to_dict(),
            "reliability": [event.to_dict() for event in self._reliability_events],
        }
        if self._state is not None:
            built = self._state.built
            model = self._state.model
            report["graph"] = {
                "nodes": built.graph.num_nodes(),
                "edges": built.graph.num_edges(),
                "engine": built.engine,
                "intersect_anchor": built.intersect_anchor,
            }
            model_info: Dict[str, object] = {
                "vocab_size": len(model.vocab) if model.vocab is not None else 0,
                "vector_size": model.config.vector_size,
            }
            if model.stats is not None:
                model_info["trainer"] = model.stats.trainer
                model_info["pairs"] = model.stats.pairs
            report["model"] = model_info
            report["incremental_deltas"] = self._delta_count
        return report
