"""Downstream classification on top of the learned embeddings.

The paper notes that "any downstream classifier can be trained using the
embeddings from our solution".  This module provides that adapter: an
:class:`EmbeddingPairClassifier` turns a fitted :class:`~repro.TDMatch`
pipeline into a supervised matcher by training a small model on features of
(query vector, candidate vector) pairs — useful when a handful of labelled
matches *is* available and a calibrated match probability is preferred over
a raw cosine ranking.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Optional, Sequence, Set

import numpy as np

from repro.baselines.nn import LogisticRegression, TrainingConfig
from repro.eval.ranking import Ranking, RankingSet
from repro.utils.rng import ensure_rng


def pair_features(query_vector: np.ndarray, candidate_vector: np.ndarray) -> np.ndarray:
    """Features of an embedding pair: cosine, L2 distance, elementwise stats."""
    qn = float(np.linalg.norm(query_vector))
    cn = float(np.linalg.norm(candidate_vector))
    cosine = float(query_vector @ candidate_vector / (qn * cn)) if qn > 0 and cn > 0 else 0.0
    difference = query_vector - candidate_vector
    hadamard = query_vector * candidate_vector
    return np.array(
        [
            cosine,
            float(np.linalg.norm(difference)),
            float(np.abs(difference).mean()),
            float(hadamard.mean()),
            float(hadamard.max()) if hadamard.size else 0.0,
            abs(qn - cn),
        ]
    )


@dataclass
class EmbeddingPairClassifier:
    """Binary match classifier over embedding-pair features.

    Parameters
    ----------
    query_vectors / candidate_vectors:
        Metadata-node vectors, e.g. ``pipeline.metadata_vectors("first")``
        and ``pipeline.metadata_vectors("second")``.
    negatives_per_positive:
        Random negative candidates sampled per annotated positive pair.
    seed:
        RNG seed for negative sampling.
    """

    query_vectors: Mapping[str, np.ndarray]
    candidate_vectors: Mapping[str, np.ndarray]
    negatives_per_positive: int = 4
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.query_vectors or not self.candidate_vectors:
            raise ValueError("query and candidate vectors must be non-empty")
        self._rng = ensure_rng(self.seed)
        self._model: Optional[LogisticRegression] = None

    # ------------------------------------------------------------------
    def fit(self, gold: Mapping[str, Set[str]]) -> "EmbeddingPairClassifier":
        """Train on the annotated matches in ``gold`` (query id → candidate ids)."""
        candidate_ids = list(self.candidate_vectors)
        features: List[np.ndarray] = []
        labels: List[int] = []
        for query_id, positives in gold.items():
            query_vector = self.query_vectors.get(query_id)
            if query_vector is None:
                continue
            for positive in positives:
                candidate_vector = self.candidate_vectors.get(positive)
                if candidate_vector is None:
                    continue
                features.append(pair_features(query_vector, candidate_vector))
                labels.append(1)
                for _ in range(self.negatives_per_positive):
                    negative = candidate_ids[int(self._rng.integers(0, len(candidate_ids)))]
                    if negative in positives:
                        continue
                    features.append(pair_features(query_vector, self.candidate_vectors[negative]))
                    labels.append(0)
        if not features:
            raise ValueError("no training pairs could be built from the gold matches")
        self._model = LogisticRegression(TrainingConfig(epochs=80, learning_rate=0.3), seed=self.seed)
        self._model.fit(np.stack(features), np.asarray(labels, dtype=float))
        return self

    # ------------------------------------------------------------------
    def match_probability(self, query_id: str, candidate_id: str) -> float:
        """Calibrated probability that the pair is a match."""
        if self._model is None:
            raise RuntimeError("classifier is not fitted")
        query_vector = self.query_vectors.get(query_id)
        candidate_vector = self.candidate_vectors.get(candidate_id)
        if query_vector is None or candidate_vector is None:
            return 0.0
        features = pair_features(query_vector, candidate_vector)[None, :]
        return float(self._model.predict_proba(features)[0])

    def rank(self, k: int = 20, query_ids: Optional[Sequence[str]] = None) -> RankingSet:
        """Rank every candidate for the given queries by match probability."""
        if self._model is None:
            raise RuntimeError("classifier is not fitted")
        if query_ids is None:
            query_ids = list(self.query_vectors)
        candidate_ids = list(self.candidate_vectors)
        rankings = RankingSet()
        for query_id in query_ids:
            query_vector = self.query_vectors[query_id]
            features = np.stack(
                [pair_features(query_vector, self.candidate_vectors[c]) for c in candidate_ids]
            )
            scores = self._model.predict_proba(features)
            order = np.argsort(-scores)[:k]
            ranking = Ranking(query_id=query_id)
            for i in order:
                ranking.add(candidate_ids[int(i)], float(scores[int(i)]))
            rankings.add(ranking)
        return rankings
