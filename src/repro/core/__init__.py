"""Core of the reproduction: the TDmatch unsupervised matching pipeline."""

from repro.core.config import (
    ENGINE_STAGES,
    CompressionConfig,
    ExpansionConfig,
    IncrementalConfig,
    MergeConfig,
    RetrievalConfig,
    ServingConfig,
    TDMatchConfig,
)
from repro.core.blocking import (
    BlockedMatcher,
    GraphQueryBlocker,
    MetadataNeighborhoodBlocking,
    TextQueryBlocker,
    TokenBlocking,
)
from repro.core.downstream import EmbeddingPairClassifier
from repro.core.exceptions import NotFittedError, PipelineError
from repro.core.matcher import MetadataMatcher, combine_score_matrices
from repro.core.pipeline import MatchResult, TDMatch

__all__ = [
    "TDMatchConfig",
    "MergeConfig",
    "ExpansionConfig",
    "CompressionConfig",
    "ServingConfig",
    "IncrementalConfig",
    "ENGINE_STAGES",
    "TDMatch",
    "MatchResult",
    "MetadataMatcher",
    "combine_score_matrices",
    "RetrievalConfig",
    "TokenBlocking",
    "MetadataNeighborhoodBlocking",
    "TextQueryBlocker",
    "GraphQueryBlocker",
    "BlockedMatcher",
    "EmbeddingPairClassifier",
    "NotFittedError",
    "PipelineError",
]
