"""Core of the reproduction: the TDmatch unsupervised matching pipeline."""

from repro.core.config import (
    CompressionConfig,
    ExpansionConfig,
    MergeConfig,
    RetrievalConfig,
    TDMatchConfig,
)
from repro.core.blocking import (
    BlockedMatcher,
    GraphQueryBlocker,
    MetadataNeighborhoodBlocking,
    TextQueryBlocker,
    TokenBlocking,
)
from repro.core.downstream import EmbeddingPairClassifier
from repro.core.exceptions import NotFittedError, PipelineError
from repro.core.matcher import MetadataMatcher, combine_score_matrices
from repro.core.pipeline import MatchResult, TDMatch

__all__ = [
    "TDMatchConfig",
    "MergeConfig",
    "ExpansionConfig",
    "CompressionConfig",
    "TDMatch",
    "MatchResult",
    "MetadataMatcher",
    "combine_score_matrices",
    "RetrievalConfig",
    "TokenBlocking",
    "MetadataNeighborhoodBlocking",
    "TextQueryBlocker",
    "GraphQueryBlocker",
    "BlockedMatcher",
    "EmbeddingPairClassifier",
    "NotFittedError",
    "PipelineError",
]
