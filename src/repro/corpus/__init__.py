"""Corpus substrate: text documents, relational tables, and taxonomies.

The paper matches documents between two *corpora*.  A corpus is one of:

* a :class:`TextCorpus` of :class:`Document` objects (sentences/paragraphs),
* a relational :class:`Table` whose documents are :class:`Row` objects,
* a :class:`Taxonomy` of hierarchical :class:`ConceptNode` objects
  ("structured text").
"""

from repro.corpus.documents import Document, TextCorpus
from repro.corpus.table import Column, Row, Table
from repro.corpus.taxonomy import ConceptNode, Taxonomy
from repro.corpus.serialization import serialize_row, serialize_table

__all__ = [
    "Document",
    "TextCorpus",
    "Column",
    "Row",
    "Table",
    "ConceptNode",
    "Taxonomy",
    "serialize_row",
    "serialize_table",
]
