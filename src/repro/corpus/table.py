"""Relational table substrate.

A :class:`Table` holds named :class:`Column` objects and :class:`Row`
objects.  Rows are the documents of a relational corpus; the graph builder
creates a metadata node per row and per column (Algorithm 1, lines 3-10).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, Iterator, List, Mapping, Optional, Sequence


@dataclass(frozen=True)
class Column:
    """A table column (attribute)."""

    name: str
    dtype: str = "text"  # "text" or "numeric"

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("Column requires a non-empty name")
        if self.dtype not in ("text", "numeric"):
            raise ValueError(f"unsupported column dtype: {self.dtype!r}")


@dataclass(frozen=True)
class Row:
    """A table row (tuple) with an identifier and per-attribute values."""

    row_id: str
    values: Mapping[str, Any]

    def __post_init__(self) -> None:
        if not self.row_id:
            raise ValueError("Row requires a non-empty row_id")

    def value(self, column: str) -> Any:
        return self.values.get(column)

    def non_null_items(self) -> List[tuple]:
        """(column, value) pairs where value is not None/empty."""
        items = []
        for col, val in self.values.items():
            if val is None:
                continue
            if isinstance(val, str) and not val.strip():
                continue
            items.append((col, val))
        return items


class Table:
    """An in-memory relation: a schema (columns) plus rows.

    The class intentionally implements only what the matching pipeline needs:
    schema introspection, row iteration, projections (used to build the
    "no title" IMDb variant), and value access.
    """

    def __init__(
        self,
        name: str,
        columns: Sequence[Column],
        rows: Iterable[Row] = (),
    ):
        if not columns:
            raise ValueError("Table requires at least one column")
        self.name = name
        self._columns: List[Column] = list(columns)
        self._column_index: Dict[str, Column] = {c.name: c for c in self._columns}
        if len(self._column_index) != len(self._columns):
            raise ValueError("duplicate column names in table schema")
        self._rows: List[Row] = []
        self._by_id: Dict[str, Row] = {}
        for row in rows:
            self.add_row(row)

    # ------------------------------------------------------------------
    # Schema
    @property
    def columns(self) -> List[Column]:
        return list(self._columns)

    @property
    def column_names(self) -> List[str]:
        return [c.name for c in self._columns]

    def column(self, name: str) -> Column:
        if name not in self._column_index:
            raise KeyError(f"no such column: {name!r}")
        return self._column_index[name]

    def has_column(self, name: str) -> bool:
        return name in self._column_index

    # ------------------------------------------------------------------
    # Rows
    def add_row(self, row: Row) -> None:
        if row.row_id in self._by_id:
            raise ValueError(f"duplicate row id: {row.row_id!r}")
        unknown = set(row.values) - set(self._column_index)
        if unknown:
            raise ValueError(f"row {row.row_id!r} has values for unknown columns: {sorted(unknown)}")
        self._by_id[row.row_id] = row
        self._rows.append(row)

    def add_record(self, row_id: str, **values: Any) -> Row:
        """Convenience constructor: build a :class:`Row` and add it."""
        row = Row(row_id=row_id, values=dict(values))
        self.add_row(row)
        return row

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    def __contains__(self, row_id: str) -> bool:
        return row_id in self._by_id

    def __getitem__(self, row_id: str) -> Row:
        return self._by_id[row_id]

    def get(self, row_id: str, default: Optional[Row] = None) -> Optional[Row]:
        return self._by_id.get(row_id, default)

    @property
    def rows(self) -> List[Row]:
        return list(self._rows)

    @property
    def row_ids(self) -> List[str]:
        return [r.row_id for r in self._rows]

    # ------------------------------------------------------------------
    # Relational-algebra style helpers
    def project(self, column_names: Sequence[str], name: Optional[str] = None) -> "Table":
        """Return a new table with only ``column_names`` (order preserved)."""
        missing = [c for c in column_names if c not in self._column_index]
        if missing:
            raise KeyError(f"cannot project on unknown columns: {missing}")
        columns = [self._column_index[c] for c in column_names]
        projected = Table(name or f"{self.name}_proj", columns)
        for row in self._rows:
            projected.add_row(
                Row(
                    row_id=row.row_id,
                    values={c: row.values.get(c) for c in column_names if c in row.values},
                )
            )
        return projected

    def drop_columns(self, column_names: Sequence[str], name: Optional[str] = None) -> "Table":
        """Return a new table without ``column_names`` (e.g. IMDb "NT" variant)."""
        keep = [c.name for c in self._columns if c.name not in set(column_names)]
        return self.project(keep, name=name or f"{self.name}_dropped")

    def select(self, predicate) -> "Table":
        """Return a new table containing only rows where ``predicate(row)``."""
        result = Table(f"{self.name}_sel", self._columns)
        for row in self._rows:
            if predicate(row):
                result.add_row(row)
        return result

    def column_values(self, column: str, skip_null: bool = True) -> List[Any]:
        """All values of a column, optionally skipping nulls."""
        if column not in self._column_index:
            raise KeyError(f"no such column: {column!r}")
        values = []
        for row in self._rows:
            value = row.values.get(column)
            if skip_null and (value is None or (isinstance(value, str) and not value.strip())):
                continue
            values.append(value)
        return values

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"Table(name={self.name!r}, columns={len(self._columns)}, rows={len(self._rows)})"
