"""Tuple serialization for sequence-based baselines.

Baselines such as Word2Vec/Doc2Vec over documents and the Ditto-style
matcher cannot consume relational rows directly; the paper serialises every
tuple into a sentence with the special ``[COL]`` / ``[VAL]`` markers
(Section V-A), e.g.::

    [COL] title [VAL] The Sixth Sense [COL] director [VAL] Shyamalan ...
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.corpus.table import Row, Table

COL_TOKEN = "[COL]"
VAL_TOKEN = "[VAL]"


def serialize_row(
    row: Row,
    columns: Optional[Sequence[str]] = None,
    include_markers: bool = True,
) -> str:
    """Serialize a row into a single string.

    Parameters
    ----------
    row:
        The row to serialize.
    columns:
        Restrict / order the attributes; defaults to the row's own ordering.
    include_markers:
        When True (default) use the ``[COL] name [VAL] value`` convention;
        otherwise concatenate the values only.
    """
    if columns is None:
        items = [(c, v) for c, v in row.values.items()]
    else:
        items = [(c, row.values.get(c)) for c in columns]
    parts: List[str] = []
    for column, value in items:
        if value is None:
            continue
        text = str(value).strip()
        if not text:
            continue
        if include_markers:
            parts.extend([COL_TOKEN, column, VAL_TOKEN, text])
        else:
            parts.append(text)
    return " ".join(parts)


def serialize_table(
    table: Table,
    columns: Optional[Sequence[str]] = None,
    include_markers: bool = True,
) -> List[str]:
    """Serialize every row of ``table``; the output order matches row order."""
    cols = list(columns) if columns is not None else table.column_names
    return [serialize_row(row, columns=cols, include_markers=include_markers) for row in table]
