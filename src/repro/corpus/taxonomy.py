"""Taxonomy ("structured text") substrate.

The text-to-structured-text task of the paper matches audit documents to
nodes of a concept taxonomy.  A taxonomy is a forest of :class:`ConceptNode`
objects; each node carries a textual label and the hierarchical (parent)
relation is modelled as metadata-metadata edges in the graph (Algorithm 1,
lines 12-16, and Section II-A).

Ground-truth paths (root → node) are used by the Exact and Node score
metrics of Section V-B.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional


@dataclass
class ConceptNode:
    """A node of the taxonomy.

    Attributes
    ----------
    node_id:
        Unique identifier (metadata-node label in the graph).
    label:
        Human-readable concept text, e.g. ``"Plan Do Check Act Steps"``.
    parent_id:
        Identifier of the parent concept, or ``None`` for roots.
    """

    node_id: str
    label: str
    parent_id: Optional[str] = None
    metadata: Dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.node_id:
            raise ValueError("ConceptNode requires a non-empty node_id")
        if not self.label:
            raise ValueError(f"ConceptNode {self.node_id!r} requires a non-empty label")


class Taxonomy:
    """A forest of concepts with parent links and path utilities."""

    def __init__(self, nodes: Iterable[ConceptNode] = (), name: str = "taxonomy"):
        self.name = name
        self._nodes: Dict[str, ConceptNode] = {}
        self._children: Dict[str, List[str]] = {}
        self._order: List[str] = []
        for node in nodes:
            self.add(node)

    # ------------------------------------------------------------------
    def add(self, node: ConceptNode) -> None:
        if node.node_id in self._nodes:
            raise ValueError(f"duplicate concept id: {node.node_id!r}")
        self._nodes[node.node_id] = node
        self._order.append(node.node_id)
        self._children.setdefault(node.node_id, [])
        if node.parent_id is not None:
            self._children.setdefault(node.parent_id, []).append(node.node_id)

    def add_concept(
        self, node_id: str, label: str, parent_id: Optional[str] = None, **metadata: str
    ) -> ConceptNode:
        node = ConceptNode(node_id=node_id, label=label, parent_id=parent_id, metadata=dict(metadata))
        self.add(node)
        return node

    def validate(self) -> None:
        """Check that all parent references resolve and there are no cycles."""
        for node in self:
            if node.parent_id is not None and node.parent_id not in self._nodes:
                raise ValueError(
                    f"concept {node.node_id!r} references unknown parent {node.parent_id!r}"
                )
        for node in self:
            seen = set()
            current: Optional[str] = node.node_id
            while current is not None:
                if current in seen:
                    raise ValueError(f"cycle detected in taxonomy at {current!r}")
                seen.add(current)
                parent = self._nodes[current].parent_id
                current = parent

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._nodes)

    def __iter__(self) -> Iterator[ConceptNode]:
        return iter(self._nodes[node_id] for node_id in self._order)

    def __contains__(self, node_id: str) -> bool:
        return node_id in self._nodes

    def __getitem__(self, node_id: str) -> ConceptNode:
        return self._nodes[node_id]

    def get(self, node_id: str, default: Optional[ConceptNode] = None) -> Optional[ConceptNode]:
        return self._nodes.get(node_id, default)

    @property
    def node_ids(self) -> List[str]:
        return list(self._order)

    def roots(self) -> List[ConceptNode]:
        return [n for n in self if n.parent_id is None]

    def children(self, node_id: str) -> List[ConceptNode]:
        return [self._nodes[c] for c in self._children.get(node_id, [])]

    def parent(self, node_id: str) -> Optional[ConceptNode]:
        parent_id = self._nodes[node_id].parent_id
        if parent_id is None:
            return None
        return self._nodes.get(parent_id)

    def is_leaf(self, node_id: str) -> bool:
        return not self._children.get(node_id)

    # ------------------------------------------------------------------
    # Path utilities for the Exact / Node score metrics
    def path_to_root(self, node_id: str) -> List[str]:
        """Node ids from the root down to ``node_id`` (inclusive)."""
        if node_id not in self._nodes:
            raise KeyError(f"no such concept: {node_id!r}")
        path: List[str] = []
        current: Optional[str] = node_id
        while current is not None:
            path.append(current)
            current = self._nodes[current].parent_id
        path.reverse()
        return path

    def label_path(self, node_id: str) -> List[str]:
        """Concept labels from the root down to ``node_id``."""
        return [self._nodes[n].label for n in self.path_to_root(node_id)]

    def depth(self, node_id: str) -> int:
        """Depth of ``node_id`` (roots have depth 1)."""
        return len(self.path_to_root(node_id))

    def max_depth(self) -> int:
        return max((self.depth(n) for n in self._order), default=0)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"Taxonomy(name={self.name!r}, size={len(self)})"
