"""Plain text corpora.

A :class:`Document` is the unit of matching on the text side: a sentence,
a paragraph, or a review, depending on the user-defined granularity
(Section II of the paper).  A :class:`TextCorpus` is an ordered collection of
documents with unique identifiers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional


@dataclass(frozen=True)
class Document:
    """A single text document.

    Attributes
    ----------
    doc_id:
        Unique identifier within its corpus (used as metadata-node label).
    text:
        Raw document text.
    metadata:
        Optional free-form attributes (e.g. source, author) that are not used
        by the matcher but are convenient for applications.
    """

    doc_id: str
    text: str
    metadata: Dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.doc_id:
            raise ValueError("Document requires a non-empty doc_id")

    def __len__(self) -> int:
        return len(self.text)


class TextCorpus:
    """An ordered, id-indexed collection of :class:`Document` objects."""

    def __init__(self, documents: Iterable[Document] = (), name: str = "corpus"):
        self.name = name
        self._documents: List[Document] = []
        self._by_id: Dict[str, Document] = {}
        for doc in documents:
            self.add(doc)

    # ------------------------------------------------------------------
    def add(self, document: Document) -> None:
        """Add a document; ids must be unique within the corpus."""
        if document.doc_id in self._by_id:
            raise ValueError(f"duplicate document id: {document.doc_id!r}")
        self._by_id[document.doc_id] = document
        self._documents.append(document)

    def add_text(self, doc_id: str, text: str, **metadata: str) -> Document:
        """Convenience constructor: wrap raw text into a document and add it."""
        doc = Document(doc_id=doc_id, text=text, metadata=dict(metadata))
        self.add(doc)
        return doc

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._documents)

    def __iter__(self) -> Iterator[Document]:
        return iter(self._documents)

    def __contains__(self, doc_id: str) -> bool:
        return doc_id in self._by_id

    def __getitem__(self, doc_id: str) -> Document:
        return self._by_id[doc_id]

    def get(self, doc_id: str, default: Optional[Document] = None) -> Optional[Document]:
        return self._by_id.get(doc_id, default)

    @property
    def document_ids(self) -> List[str]:
        return [d.doc_id for d in self._documents]

    @property
    def documents(self) -> List[Document]:
        return list(self._documents)

    def texts(self) -> List[str]:
        return [d.text for d in self._documents]

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"TextCorpus(name={self.name!r}, size={len(self)})"
