"""Synonym lexicon (WordNet stand-in).

Used in two places:

* as the calibration set for the γ threshold of embedding-based node
  merging (Section II-C — the paper uses 17K WordNet synonym pairs);
* as an external resource for expanding concept graphs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Sequence, Set, Tuple

from repro.kb.knowledge_base import InMemoryKnowledgeBase


@dataclass
class SynonymLexicon:
    """Groups of interchangeable terms (synsets)."""

    synsets: Dict[str, List[str]] = field(default_factory=dict)

    def add_synset(self, name: str, members: Sequence[str]) -> None:
        cleaned = [m.strip().lower() for m in members if m and m.strip()]
        if len(cleaned) < 2:
            raise ValueError(f"synset {name!r} needs at least two members")
        self.synsets[name] = cleaned

    def synonyms_of(self, term: str) -> Set[str]:
        term = term.strip().lower()
        result: Set[str] = set()
        for members in self.synsets.values():
            if term in members:
                result.update(m for m in members if m != term)
        return result

    def pairs(self) -> List[Tuple[str, str]]:
        """All within-synset pairs — the γ calibration set."""
        out: List[Tuple[str, str]] = []
        for members in self.synsets.values():
            for i in range(len(members)):
                for j in range(i + 1, len(members)):
                    out.append((members[i], members[j]))
        return out

    def to_knowledge_base(self, name: str = "wordnet") -> InMemoryKnowledgeBase:
        """Expose the lexicon with the KB lookup interface."""
        kb = InMemoryKnowledgeBase(name=name)
        for synset, members in self.synsets.items():
            for member in members:
                kb.add_relation(member, "synonymOf", synset)
        return kb

    def __len__(self) -> int:
        return len(self.synsets)


def build_synonym_lexicon(clusters: Mapping[str, Iterable[str]]) -> SynonymLexicon:
    """Build a lexicon from cluster-name → members."""
    lexicon = SynonymLexicon()
    for name, members in clusters.items():
        members = list(members)
        if len(members) >= 2:
            lexicon.add_synset(name, members)
    return lexicon
