"""Knowledge-base substrate used by graph expansion (Algorithm 2).

The paper plugs ConceptNet, DBpedia, and WordNet into the expansion step.
Offline, we provide an in-memory triple store with the same lookup
interface, plus synthetic generators that build entity-centric
(DBpedia-like) and concept-centric (ConceptNet-like) resources whose
signal-to-noise structure matches the paper's observations (few useful
relations among many irrelevant ones).
"""

from repro.kb.knowledge_base import InMemoryKnowledgeBase, KnowledgeBase, Triple
from repro.kb.conceptnet import build_concept_kb
from repro.kb.dbpedia import build_entity_kb
from repro.kb.wordnet import SynonymLexicon, build_synonym_lexicon

__all__ = [
    "KnowledgeBase",
    "InMemoryKnowledgeBase",
    "Triple",
    "build_concept_kb",
    "build_entity_kb",
    "SynonymLexicon",
    "build_synonym_lexicon",
]
