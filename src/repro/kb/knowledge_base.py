"""In-memory knowledge base (triple store) for graph expansion.

A knowledge base maps a *term* to the set of terms it is related to; the
expansion algorithm only needs undirected neighbourhood lookups, but triples
keep the predicate so applications can inspect or filter relations (the
paper cites relations such as ``starringOf(Willis, Pulp Fiction)``).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Set, Tuple


@dataclass(frozen=True)
class Triple:
    """A (subject, predicate, object) relation."""

    subject: str
    predicate: str
    object: str

    def __post_init__(self) -> None:
        if not self.subject or not self.predicate or not self.object:
            raise ValueError("triple fields must be non-empty")


class KnowledgeBase(ABC):
    """Lookup interface consumed by :func:`repro.graph.expansion.expand_graph`."""

    @abstractmethod
    def related(self, term: str) -> List[str]:
        """All terms related to ``term`` (in either triple direction)."""

    @abstractmethod
    def __len__(self) -> int:
        """Number of stored triples."""


class InMemoryKnowledgeBase(KnowledgeBase):
    """Dictionary-backed triple store with case-insensitive lookup."""

    def __init__(self, name: str = "kb", triples: Iterable[Triple] = ()):
        self.name = name
        self._triples: List[Triple] = []
        self._neighbors: Dict[str, Set[str]] = {}
        self._predicates: Dict[Tuple[str, str], Set[str]] = {}
        for triple in triples:
            self.add(triple)

    # ------------------------------------------------------------------
    @staticmethod
    def _norm(term: str) -> str:
        return term.strip().lower()

    def add(self, triple: Triple) -> None:
        subject = self._norm(triple.subject)
        obj = self._norm(triple.object)
        if subject == obj:
            return
        self._triples.append(triple)
        self._neighbors.setdefault(subject, set()).add(obj)
        self._neighbors.setdefault(obj, set()).add(subject)
        self._predicates.setdefault((subject, obj), set()).add(triple.predicate)

    def add_relation(self, subject: str, predicate: str, obj: str) -> None:
        self.add(Triple(subject=subject, predicate=predicate, object=obj))

    # ------------------------------------------------------------------
    def related(self, term: str) -> List[str]:
        """Neighbours of ``term`` sorted for deterministic expansion order."""
        neighbors = self._neighbors.get(self._norm(term))
        if not neighbors:
            return []
        return sorted(neighbors)

    def predicates_between(self, a: str, b: str) -> Set[str]:
        key = (self._norm(a), self._norm(b))
        rev = (key[1], key[0])
        return set(self._predicates.get(key, set())) | set(self._predicates.get(rev, set()))

    def has_term(self, term: str) -> bool:
        return self._norm(term) in self._neighbors

    def terms(self) -> List[str]:
        return sorted(self._neighbors)

    def triples(self) -> Iterator[Triple]:
        return iter(self._triples)

    def __len__(self) -> int:
        return len(self._triples)

    def merge(self, other: "InMemoryKnowledgeBase") -> "InMemoryKnowledgeBase":
        """Return a new KB with the union of the triples of both."""
        merged = InMemoryKnowledgeBase(name=f"{self.name}+{other.name}")
        for triple in self._triples:
            merged.add(triple)
        for triple in other._triples:
            merged.add(triple)
        return merged

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"InMemoryKnowledgeBase(name={self.name!r}, triples={len(self)})"
