"""Synthetic ConceptNet-like resource (concepts, generic nouns and verbs).

ConceptNet relates common-sense concepts (``management`` — ``planning``).
Offline we synthesise an equivalent: given a set of *concept clusters*
(groups of related words, typically derived from the scenario vocabulary) we
emit ``RelatedTo`` triples inside each cluster, and we add noise relations
between random word pairs so that expansion also brings in useless edges —
the property that motivates the compression step of the paper.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

from repro.kb.knowledge_base import InMemoryKnowledgeBase
from repro.utils.rng import ensure_rng


def build_concept_kb(
    concept_clusters: Mapping[str, Sequence[str]],
    noise_terms: Optional[Sequence[str]] = None,
    noise_relations: int = 0,
    seed=None,
    name: str = "conceptnet",
) -> InMemoryKnowledgeBase:
    """Build a concept-centric knowledge base.

    Parameters
    ----------
    concept_clusters:
        Mapping cluster label → related words; every pair of words inside a
        cluster is connected with a ``RelatedTo`` relation through the
        cluster label (hub-and-spoke, like ConceptNet concept pages).
    noise_terms:
        Pool of extra terms used to fabricate irrelevant relations.
    noise_relations:
        Number of random noise triples to add.
    seed:
        RNG seed for the noise relations.
    """
    kb = InMemoryKnowledgeBase(name=name)
    for cluster, words in concept_clusters.items():
        words = [w.lower() for w in words if w]
        for word in words:
            if word != cluster.lower():
                kb.add_relation(word, "RelatedTo", cluster.lower())
        # Also connect consecutive members directly so two related words can
        # reach each other in one hop even if the cluster hub is filtered.
        for first, second in zip(words, words[1:]):
            kb.add_relation(first, "RelatedTo", second)

    if noise_relations and noise_terms:
        rng = ensure_rng(seed)
        pool = [t.lower() for t in noise_terms if t]
        for _ in range(noise_relations):
            a = pool[int(rng.integers(0, len(pool)))]
            b = pool[int(rng.integers(0, len(pool)))]
            if a != b:
                kb.add_relation(a, "NoiseRelatedTo", b)
    return kb
