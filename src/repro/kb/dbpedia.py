"""Synthetic DBpedia-like resource (named entities).

DBpedia relates named entities: directors to their movies, actors to their
co-stars, people to their spouses.  The expansion example of the paper adds
``style(Tarantino, Comedy)`` and ``starringOf(Willis, Pulp Fiction)``.  The
synthetic builder receives explicit entity relations from the scenario world
model (the useful signal) and pads every popular entity with many unrelated
facts (the noise the compression step has to prune — DBpedia lists more than
800 relations for Quentin Tarantino).
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.kb.knowledge_base import InMemoryKnowledgeBase
from repro.utils.rng import ensure_rng


def build_entity_kb(
    entity_relations: Sequence[Tuple[str, str, str]],
    popular_entities: Optional[Sequence[str]] = None,
    noise_per_entity: int = 0,
    noise_vocabulary: Optional[Sequence[str]] = None,
    seed=None,
    name: str = "dbpedia",
) -> InMemoryKnowledgeBase:
    """Build an entity-centric knowledge base.

    Parameters
    ----------
    entity_relations:
        Useful (subject, predicate, object) triples coming from the
        scenario's world model (e.g. ``("tarantino", "directorOf", "pulp
        fiction")``).
    popular_entities:
        Entities that also receive ``noise_per_entity`` irrelevant triples
        (random facts about unrelated nouns), reproducing DBpedia's fan-out.
    noise_per_entity / noise_vocabulary / seed:
        Control the irrelevant triples.
    """
    kb = InMemoryKnowledgeBase(name=name)
    for subject, predicate, obj in entity_relations:
        kb.add_relation(subject, predicate, obj)

    if popular_entities and noise_per_entity and noise_vocabulary:
        rng = ensure_rng(seed)
        vocab = [v.lower() for v in noise_vocabulary if v]
        for entity in popular_entities:
            for i in range(noise_per_entity):
                filler = vocab[int(rng.integers(0, len(vocab)))]
                kb.add_relation(entity, "wikiPageWikiLink", f"{filler} {i}")
    return kb
