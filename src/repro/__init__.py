"""TDmatch reproduction: unsupervised matching of data and text.

This package reproduces the system of "Unsupervised Matching of Data and
Text" (ICDE 2022): a graph-based, unsupervised framework that matches text
documents to relational tuples, taxonomy concepts, or other text documents.

Quick start::

    from repro import TDMatch, TDMatchConfig
    from repro.datasets import generate_imdb_scenario, ScenarioSize

    scenario = generate_imdb_scenario(ScenarioSize.tiny(), seed=1)
    pipeline = TDMatch(TDMatchConfig.fast(), seed=1)
    pipeline.fit(scenario.first, scenario.second)
    rankings = pipeline.match(k=5)

The public API is re-exported lazily (PEP 562): attribute access triggers
the submodule import, so dependency-free subpackages — notably
``python -m repro.analysis``, which must run in environments without
numpy — can be imported without pulling in the numeric stack.
"""

from importlib import import_module
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - static type checkers only
    from repro.core.config import (
        CompressionConfig,
        ExpansionConfig,
        MergeConfig,
        RetrievalConfig,
        TDMatchConfig,
    )
    from repro.core.matcher import MetadataMatcher, combine_score_matrices
    from repro.core.pipeline import MatchResult, TDMatch
    from repro.corpus import Document, Table, Taxonomy, TextCorpus
    from repro.eval.metrics import evaluate_rankings
    from repro.retrieval import BlockedTopK, CombinedTopK, DenseTopK

__version__ = "1.0.0"

#: Public name -> defining submodule; resolved on first attribute access.
_EXPORTS = {
    "TDMatch": "repro.core.pipeline",
    "MatchResult": "repro.core.pipeline",
    "TDMatchConfig": "repro.core.config",
    "MergeConfig": "repro.core.config",
    "ExpansionConfig": "repro.core.config",
    "CompressionConfig": "repro.core.config",
    "RetrievalConfig": "repro.core.config",
    "MetadataMatcher": "repro.core.matcher",
    "combine_score_matrices": "repro.core.matcher",
    "DenseTopK": "repro.retrieval",
    "BlockedTopK": "repro.retrieval",
    "CombinedTopK": "repro.retrieval",
    "Document": "repro.corpus",
    "TextCorpus": "repro.corpus",
    "Table": "repro.corpus",
    "Taxonomy": "repro.corpus",
    "evaluate_rankings": "repro.eval.metrics",
}

__all__ = [*_EXPORTS, "__version__"]


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    value = getattr(import_module(module_name), name)
    globals()[name] = value  # cache: later accesses skip __getattr__
    return value


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
