"""TDmatch reproduction: unsupervised matching of data and text.

This package reproduces the system of "Unsupervised Matching of Data and
Text" (ICDE 2022): a graph-based, unsupervised framework that matches text
documents to relational tuples, taxonomy concepts, or other text documents.

Quick start::

    from repro import TDMatch, TDMatchConfig
    from repro.datasets import generate_imdb_scenario, ScenarioSize

    scenario = generate_imdb_scenario(ScenarioSize.tiny(), seed=1)
    pipeline = TDMatch(TDMatchConfig.fast(), seed=1)
    pipeline.fit(scenario.first, scenario.second)
    rankings = pipeline.match(k=5)
"""

from repro.core.config import (
    CompressionConfig,
    ExpansionConfig,
    MergeConfig,
    RetrievalConfig,
    TDMatchConfig,
)
from repro.core.matcher import MetadataMatcher, combine_score_matrices
from repro.core.pipeline import MatchResult, TDMatch
from repro.corpus import Document, Table, Taxonomy, TextCorpus
from repro.eval.metrics import evaluate_rankings
from repro.retrieval import BlockedTopK, CombinedTopK, DenseTopK

__version__ = "1.0.0"

__all__ = [
    "TDMatch",
    "TDMatchConfig",
    "MergeConfig",
    "ExpansionConfig",
    "CompressionConfig",
    "RetrievalConfig",
    "MatchResult",
    "MetadataMatcher",
    "combine_score_matrices",
    "DenseTopK",
    "BlockedTopK",
    "CombinedTopK",
    "Document",
    "TextCorpus",
    "Table",
    "Taxonomy",
    "evaluate_rankings",
    "__version__",
]
